//! Dynamic pruning of well-tested failure sites (paper Section 3.4:
//! "We can also use dynamic technique like ConSeq to prune well tested
//! potential failure sites").
//!
//! Survival mode hardens every statically identifiable site, including many
//! that never fail. Sites whose checks have executed many times across
//! test runs without ever failing are unlikely to hide bugs; dropping them
//! removes their reexecution points and shrinks the (already tiny)
//! overhead further.

use std::collections::{HashMap, HashSet};

use conair_analysis::HardeningPlan;
use conair_ir::SiteId;
use conair_runtime::{run_scripted, MachineConfig, Program, ScheduleScript};

use crate::pipeline::HardenedProgram;
use crate::Conair;

/// Configuration for well-tested-site pruning.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// A site is "well tested" once its check has executed at least this
    /// many times across the profiling runs without a single failure.
    pub min_checks: u64,
    /// Profiling runs.
    pub trials: usize,
    /// First scheduler seed.
    pub seed0: u64,
    /// Machine configuration for the profiling runs.
    pub machine: MachineConfig,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            min_checks: 10,
            trials: 5,
            seed0: 77,
            machine: MachineConfig::default(),
        }
    }
}

/// The outcome of a pruning pass.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// Sites dropped (well tested).
    pub pruned_sites: Vec<SiteId>,
    /// Static reexecution points before pruning.
    pub points_before: usize,
    /// Static reexecution points after pruning.
    pub points_after: usize,
}

/// Profiles the hardened program on benign runs and returns the sites that
/// qualify as well tested.
pub fn well_tested_sites(
    hardened: &Program,
    script: &ScheduleScript,
    config: &PruneConfig,
) -> HashSet<SiteId> {
    let mut checks: HashMap<SiteId, u64> = HashMap::new();
    let mut ever_failed: HashSet<SiteId> = HashSet::new();
    for i in 0..config.trials {
        let r = run_scripted(hardened, &config.machine, script, config.seed0 + i as u64);
        for (site, n) in &r.stats.site_checks {
            *checks.entry(*site).or_insert(0) += n;
        }
        for (site, rec) in &r.stats.site_recovery {
            if rec.retries > 0 {
                ever_failed.insert(*site);
            }
        }
    }
    checks
        .into_iter()
        .filter(|(site, n)| *n >= config.min_checks && !ever_failed.contains(site))
        .map(|(site, _)| site)
        .collect()
}

/// Removes `pruned` sites from `plan`, recomputing the checkpoint set (a
/// checkpoint survives only while some remaining recoverable site uses it).
pub fn prune_plan(plan: &HardeningPlan, pruned: &HashSet<SiteId>) -> HardeningPlan {
    let mut out = plan.clone();
    let mut checkpoint_set = std::collections::BTreeSet::new();
    for sp in &mut out.sites {
        if pruned.contains(&sp.site.id) {
            sp.verdict = conair_analysis::RecoverabilityVerdict::NoSharedReadOnSlice;
            sp.points.clear();
        } else if sp.is_recoverable() {
            checkpoint_set.extend(sp.points.iter().copied());
        }
    }
    out.checkpoints = checkpoint_set.into_iter().collect();
    out.stats.static_points = out.checkpoints.len();
    out.stats.recoverable_sites = out.sites.iter().filter(|s| s.is_recoverable()).count();
    out
}

/// End-to-end pruning: profile `program` under survival-mode hardening,
/// drop well-tested sites, and re-harden with the pruned plan.
pub fn harden_with_pruning(
    pipeline: &Conair,
    program: &Program,
    script: &ScheduleScript,
    config: &PruneConfig,
) -> (HardenedProgram, PruneReport) {
    let first = pipeline.harden(program);
    let pruned = well_tested_sites(&first.program, script, config);
    let new_plan = prune_plan(&first.plan, &pruned);
    let report = PruneReport {
        pruned_sites: {
            let mut v: Vec<_> = pruned.into_iter().collect();
            v.sort();
            v
        },
        points_before: first.plan.stats.static_points,
        points_after: new_plan.stats.static_points,
    };
    let hardened = conair_transform::harden(program.module.clone(), &new_plan);
    (
        HardenedProgram {
            program: program.with_module(hardened.module),
            plan: new_plan,
            transform: hardened.stats,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
    use conair_runtime::run_once;

    /// A program with a hot well-tested assert and a cold never-executed
    /// assert: pruning drops the former and keeps the latter.
    fn program() -> Program {
        let mut mb = ModuleBuilder::new("p");
        let g = mb.global("g", 1);
        let cold = {
            let mut fb = FuncBuilder::new("cold", 0);
            let v = fb.load_global(g);
            let c = fb.cmp(CmpKind::Ge, v, 0);
            fb.assert(c, "cold site");
            fb.ret();
            mb.function(fb.finish())
        };
        let mut fb = FuncBuilder::new("main", 0);
        fb.counted_loop(50, |b, _| {
            let v = b.load_global(g);
            let c = b.cmp(CmpKind::Ge, v, 0);
            b.assert(c, "hot site");
        });
        let v = fb.load_global(g);
        let never = fb.cmp(CmpKind::Lt, v, 0);
        let cold_bb = fb.new_block();
        let done = fb.new_block();
        fb.branch(never, cold_bb, done);
        fb.switch_to(cold_bb);
        fb.call_void(cold, vec![]);
        fb.jump(done);
        fb.switch_to(done);
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["main"])
    }

    #[test]
    fn hot_sites_pruned_cold_sites_kept() {
        let pipeline = Conair::survival();
        let (hardened, report) = harden_with_pruning(
            &pipeline,
            &program(),
            &ScheduleScript::none(),
            &PruneConfig::default(),
        );
        assert!(!report.pruned_sites.is_empty(), "the hot assert is pruned");
        assert!(report.points_after < report.points_before);
        // The pruned program still runs correctly.
        let r = run_once(&hardened.program, &MachineConfig::default(), 1);
        assert!(r.outcome.is_completed());
        // The never-executed cold site keeps its guard (0 checks < min).
        let cold_guards = hardened
            .program
            .module
            .iter_insts()
            .filter(
                |(_, i)| matches!(i, conair_ir::Inst::FailGuard { msg, .. } if msg == "cold site"),
            )
            .count();
        assert_eq!(cold_guards, 1);
    }

    #[test]
    fn pruning_never_fires_below_check_threshold() {
        let pipeline = Conair::survival();
        let cfg = PruneConfig {
            min_checks: 1_000_000,
            ..PruneConfig::default()
        };
        let (_, report) = harden_with_pruning(&pipeline, &program(), &ScheduleScript::none(), &cfg);
        assert!(report.pruned_sites.is_empty());
        assert_eq!(report.points_before, report.points_after);
    }

    #[test]
    fn failed_sites_are_never_pruned() {
        // A site that fails (and recovers) during profiling must be kept
        // no matter how often it executes.
        use conair_runtime::Gate;
        let mut mb = ModuleBuilder::new("p");
        let flag = mb.global("flag", 0);
        let mut fb = FuncBuilder::new("reader", 0);
        fb.marker("reader_started");
        let v = fb.load_global(flag);
        let c = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(c, "flag set");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("writer", 0);
        fb.marker("before_write");
        fb.store_global(flag, 1);
        fb.ret();
        mb.function(fb.finish());
        let program = Program::from_entry_names(mb.finish(), &["reader", "writer"]);
        let script =
            ScheduleScript::with_gates(vec![Gate::new(1, "before_write", "reader_started")]);
        let cfg = PruneConfig {
            min_checks: 1,
            trials: 10,
            ..PruneConfig::default()
        };
        let (_, report) = harden_with_pruning(&Conair::survival(), &program, &script, &cfg);
        assert!(
            report.pruned_sites.is_empty(),
            "a site that failed in profiling is kept: {:?}",
            report.pruned_sites
        );
    }
}
