//! # conair
//!
//! A Rust reproduction of **ConAir** (ASPLOS 2013): featherweight
//! concurrency-bug recovery via single-threaded idempotent execution.
//!
//! ConAir helps multithreaded software survive concurrency-bug failures at
//! production time. Its two key observations:
//!
//! 1. **Single-threaded rollback suffices** for most concurrency-bug
//!    failures — the failing thread is usually part of the buggy
//!    interleaving, so re-executing just that thread serializes or reorders
//!    the racing accesses.
//! 2. **Idempotent regions need no checkpointing** — a region with no
//!    shared-memory writes, no stack-slot writes and no I/O can be
//!    reexecuted any number of times; saving the register image at its
//!    start (the `setjmp` analog) is all the state recovery needs.
//!
//! This crate is the public entry point: a [`Conair`] pipeline configures
//! the static analyses (`conair-analysis`), applies the code transformation
//! (`conair-transform`) and yields a program the deterministic runtime
//! (`conair-runtime`) can execute with rollback recovery.
//!
//! ## Quickstart
//!
//! ```rust
//! use conair::Conair;
//! use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
//! use conair_runtime::{run_once, MachineConfig, Program};
//!
//! // A tiny program with one assertion failure site.
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 1);
//! let mut fb = FuncBuilder::new("main", 0);
//! let v = fb.load_global(flag);
//! let ok = fb.cmp(CmpKind::Ne, v, 0);
//! fb.assert(ok, "flag must be set");
//! fb.ret();
//! mb.function(fb.finish());
//! let program = Program::from_entry_names(mb.finish(), &["main"]);
//!
//! // Harden it (survival mode) and run it.
//! let hardened = Conair::survival().harden(&program);
//! assert_eq!(hardened.plan.stats.static_points, 1);
//! let result = run_once(&hardened.program, &MachineConfig::default(), 0);
//! assert!(result.outcome.is_completed());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
pub mod oracle;
mod pipeline;
pub mod properties;
pub mod prune;
mod timing;

pub use config::{ConairConfig, ConairConfigBuilder, Mode};
pub use oracle::{infer_oracles, instrument_oracles, InferConfig, Invariant, OracleSet};
pub use pipeline::{Conair, HardenedProgram};
pub use prune::{harden_with_pruning, prune_plan, well_tested_sites, PruneConfig, PruneReport};
pub use timing::{PhaseSpan, PhaseSpans};

// Re-export the pieces users need to drive the pipeline end to end.
pub use conair_analysis::{HardeningPlan, PlanStats, RegionPolicy, SitePlan};
pub use conair_transform::TransformStats;
