//! Likely-invariant inference for output oracles (paper Section 6.1.2:
//! "Future work can also use likely-invariant inference tools to infer
//! such specifications for an output function, and automate the
//! wrong-output failure recovery process").
//!
//! Wrong-output failures are only recoverable when ConAir can *detect* the
//! wrong output — the paper requires developers to annotate correctness
//! conditions. This module automates the common case: profile the program
//! on correct runs, infer per-label invariants over the emitted values
//! (constant, or range), and instrument an `OutputAssert` oracle before
//! every matching `Output`. The instrumented module then goes through the
//! normal ConAir pipeline, which hardens the synthesized oracles like any
//! developer-written ones.

use std::collections::{BTreeMap, HashMap};

use conair_ir::{BinOpKind, CmpKind, Inst, Module, Operand};
use conair_runtime::{run_scripted, MachineConfig, Program, ScheduleScript};

/// An inferred per-label output invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Every observed value was this constant.
    Constant(i64),
    /// Observed values spanned this inclusive range.
    Range {
        /// Smallest observed value.
        min: i64,
        /// Largest observed value.
        max: i64,
    },
}

impl Invariant {
    /// Whether `v` satisfies the invariant.
    pub fn holds(&self, v: i64) -> bool {
        match self {
            Invariant::Constant(c) => v == *c,
            Invariant::Range { min, max } => (*min..=*max).contains(&v),
        }
    }
}

/// Inferred invariants keyed by output label.
#[derive(Debug, Clone, Default)]
pub struct OracleSet {
    invariants: BTreeMap<String, Invariant>,
}

impl OracleSet {
    /// The invariant for `label`, if inferred.
    pub fn invariant(&self, label: &str) -> Option<Invariant> {
        self.invariants.get(label).copied()
    }

    /// Number of inferred invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// Whether nothing was inferred.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Iterates over `(label, invariant)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Invariant)> {
        self.invariants.iter().map(|(l, i)| (l.as_str(), *i))
    }
}

/// Configuration for invariant inference.
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// Profiling runs (all must complete).
    pub trials: usize,
    /// First scheduler seed.
    pub seed0: u64,
    /// Labels to skip (e.g. debug traces with no semantic contract).
    pub exclude_labels: Vec<String>,
    /// Machine configuration for the profiling runs.
    pub machine: MachineConfig,
}

impl Default for InferConfig {
    fn default() -> Self {
        Self {
            trials: 8,
            seed0: 4242,
            exclude_labels: vec!["trace".into()],
            machine: MachineConfig::default(),
        }
    }
}

/// Profiles `program` on correct runs (under `script`) and infers output
/// invariants.
///
/// Runs that do not complete are skipped (they would poison the sample);
/// labels whose values vary are summarized as ranges.
pub fn infer_oracles(
    program: &Program,
    script: &ScheduleScript,
    config: &InferConfig,
) -> OracleSet {
    let mut samples: HashMap<String, Vec<i64>> = HashMap::new();
    for i in 0..config.trials {
        let r = run_scripted(program, &config.machine, script, config.seed0 + i as u64);
        if !r.outcome.is_completed() {
            continue;
        }
        for o in &r.outputs {
            if config.exclude_labels.iter().any(|l| l == &o.label) {
                continue;
            }
            samples.entry(o.label.clone()).or_default().push(o.value);
        }
    }
    let mut set = OracleSet::default();
    for (label, values) in samples {
        let min = *values.iter().min().expect("non-empty sample");
        let max = *values.iter().max().expect("non-empty sample");
        let inv = if min == max {
            Invariant::Constant(min)
        } else {
            Invariant::Range { min, max }
        };
        set.invariants.insert(label, inv);
    }
    set
}

/// Instruments `module` with an `OutputAssert` oracle before every
/// `Output` whose label has an inferred invariant. Returns the number of
/// oracles inserted.
pub fn instrument_oracles(module: &mut Module, oracles: &OracleSet) -> usize {
    let mut inserted = 0;
    for func in &mut module.functions {
        for block in &mut func.blocks {
            let original = std::mem::take(&mut block.insts);
            let mut rebuilt = Vec::with_capacity(original.len());
            for inst in original {
                if let Inst::Output { label, value } = &inst {
                    if let Some(inv) = oracles.invariant(label) {
                        let cond = match inv {
                            Invariant::Constant(c) => {
                                let r = conair_ir::Reg::from_index(func.num_regs);
                                func.num_regs += 1;
                                rebuilt.push(Inst::Cmp {
                                    dst: r,
                                    op: CmpKind::Eq,
                                    lhs: *value,
                                    rhs: Operand::Const(c),
                                });
                                r
                            }
                            Invariant::Range { min, max } => {
                                let lo = conair_ir::Reg::from_index(func.num_regs);
                                let hi = conair_ir::Reg::from_index(func.num_regs + 1);
                                let both = conair_ir::Reg::from_index(func.num_regs + 2);
                                func.num_regs += 3;
                                rebuilt.push(Inst::Cmp {
                                    dst: lo,
                                    op: CmpKind::Ge,
                                    lhs: *value,
                                    rhs: Operand::Const(min),
                                });
                                rebuilt.push(Inst::Cmp {
                                    dst: hi,
                                    op: CmpKind::Le,
                                    lhs: *value,
                                    rhs: Operand::Const(max),
                                });
                                rebuilt.push(Inst::BinOp {
                                    dst: both,
                                    op: BinOpKind::And,
                                    lhs: Operand::Reg(lo),
                                    rhs: Operand::Reg(hi),
                                });
                                both
                            }
                        };
                        rebuilt.push(Inst::OutputAssert {
                            cond: Operand::Reg(cond),
                            msg: format!("inferred invariant for `{label}`: {inv:?}"),
                        });
                        inserted += 1;
                    }
                }
                rebuilt.push(inst);
            }
            block.insts = rebuilt;
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{validate, FuncBuilder, ModuleBuilder};
    use conair_runtime::{run_once, Gate};

    use crate::Conair;

    #[test]
    fn invariant_predicates() {
        assert!(Invariant::Constant(5).holds(5));
        assert!(!Invariant::Constant(5).holds(6));
        let r = Invariant::Range { min: -2, max: 7 };
        assert!(r.holds(-2) && r.holds(7) && r.holds(0));
        assert!(!r.holds(8) && !r.holds(-3));
    }

    /// A racy program whose wrong output has no developer oracle: inference
    /// learns the correct constant, instrumentation adds the oracle, and
    /// the full pipeline then recovers the wrong-output failure — the
    /// Section 6.1.2 automation, end to end.
    #[test]
    fn inferred_oracle_enables_wrong_output_recovery() {
        let program2 = {
            let mut mb = ModuleBuilder::new("auto_oracle");
            let flag = mb.global("result_ready", 0);
            let mut t1 = FuncBuilder::new("reporter", 0);
            t1.marker("report_start");
            let v = t1.load_global(flag);
            t1.marker("report_read_done");
            t1.output("result", v); // no developer oracle!
            t1.ret();
            mb.function(t1.finish());
            let mut t2 = FuncBuilder::new("producer", 0);
            t2.marker("before_produce");
            t2.store_global(flag, 9);
            t2.marker("produced");
            t2.ret();
            mb.function(t2.finish());
            Program::from_entry_names(mb.finish(), &["reporter", "producer"])
        };
        // Benign schedule: hold the reporter before its read until the
        // producer has published.
        let benign = ScheduleScript::with_gates(vec![Gate::new(0, "report_start", "produced")]);
        let bug =
            ScheduleScript::with_gates(vec![Gate::new(1, "before_produce", "report_read_done")]);

        // 1. The buggy interleaving silently produces a wrong output.
        let r = run_scripted(&program2, &MachineConfig::default(), &bug, 0);
        assert!(r.outcome.is_completed(), "no failure is even detected");
        assert_eq!(r.outputs_for("result"), vec![0], "wrong output!");

        // 2. Infer the invariant from correct runs.
        let oracles = infer_oracles(&program2, &benign, &InferConfig::default());
        assert_eq!(oracles.invariant("result"), Some(Invariant::Constant(9)));

        // 3. Instrument + harden.
        let mut module = program2.module.clone();
        let inserted = instrument_oracles(&mut module, &oracles);
        assert_eq!(inserted, 1);
        validate(&module).expect("instrumented module validates");
        let instrumented = program2.with_module(module);
        let hardened = Conair::survival().harden(&instrumented);

        // 4. The same buggy interleaving now recovers with the right value.
        for seed in 0..10 {
            let r = run_scripted(&hardened.program, &MachineConfig::default(), &bug, seed);
            assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
            assert_eq!(r.outputs_for("result"), vec![9], "seed {seed}");
        }
    }

    #[test]
    fn varying_outputs_become_ranges_and_excluded_labels_skipped() {
        let mut mb = ModuleBuilder::new("range");
        let g = mb.global("seed_like", 3);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        fb.output("varies", v);
        let v2 = fb.add(v, 1);
        fb.store_global(g, v2);
        fb.output("trace", v2); // excluded by default
        fb.ret();
        mb.function(fb.finish());
        let program = Program::from_entry_names(mb.finish(), &["main"]);
        // Each profiling run starts from fresh memory, so the observed
        // value is constant across runs — force variation by sampling two
        // different programs... simpler: assert Constant here and Range on
        // a direct construction.
        let oracles = infer_oracles(&program, &ScheduleScript::none(), &InferConfig::default());
        assert_eq!(oracles.invariant("varies"), Some(Invariant::Constant(3)));
        assert_eq!(oracles.invariant("trace"), None, "excluded label skipped");

        // Range instrumentation path, directly.
        let mut set = OracleSet::default();
        set.invariants
            .insert("varies".into(), Invariant::Range { min: 2, max: 5 });
        let mut module = program.module.clone();
        let inserted = instrument_oracles(&mut module, &set);
        assert_eq!(inserted, 1);
        validate(&module).expect("range-instrumented module validates");
        let r = run_once(&program.with_module(module), &MachineConfig::default(), 0);
        assert!(r.outcome.is_completed(), "3 is inside [2,5]");
    }

    #[test]
    fn failed_profiling_runs_are_skipped() {
        // A program that always fails yields no invariants.
        let mut mb = ModuleBuilder::new("f");
        let mut fb = FuncBuilder::new("main", 0);
        let c = fb.copy(0i64);
        fb.assert(c, "always fails");
        fb.output("never", 1);
        fb.ret();
        mb.function(fb.finish());
        let program = Program::from_entry_names(mb.finish(), &["main"]);
        let oracles = infer_oracles(&program, &ScheduleScript::none(), &InferConfig::default());
        assert!(oracles.is_empty());
    }
}
