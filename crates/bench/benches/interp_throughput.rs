//! Criterion bench: raw interpreter throughput (steps/sec) on benign runs
//! of hardened workloads, and trial-engine throughput sequential vs
//! parallel — the statistically-sound companion of the `bench_interp`
//! binary (which writes `BENCH_interp.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use conair::Conair;
use conair_runtime::{run_scripted, run_trials_parallel, MachineConfig};
use conair_workloads::workload_by_name;

/// One big and one branchy workload keep the bench fast while covering the
/// dispatch patterns that matter; the `bench_interp` binary sweeps more.
const APPS: [&str; 2] = ["FFT", "HawkNL"];

const TRIALS: usize = 20;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_steps");
    group.sample_size(10);
    for app in APPS {
        let w = workload_by_name(app).expect("registered workload");
        let hardened = Conair::survival().harden(&w.program);
        let machine = MachineConfig::default();
        group.bench_with_input(BenchmarkId::new("benign_run", app), &w, |b, w| {
            b.iter(|| {
                let r = run_scripted(&hardened.program, &machine, &w.benign_script, 7);
                black_box(r.stats.steps)
            })
        });
    }
    group.finish();
}

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial_engine");
    group.sample_size(10);
    let w = workload_by_name("FFT").expect("registered workload");
    let hardened = Conair::survival().harden(&w.program);
    let machine = MachineConfig::default();
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("run_trials", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let summary = run_trials_parallel(
                    &hardened.program,
                    &machine,
                    &w.benign_script,
                    1,
                    TRIALS,
                    jobs,
                );
                black_box(summary.mean_insts)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps, bench_trials);
criterion_main!(benches);
