//! Criterion bench: end-to-end recovery latency under the forced
//! failure-inducing interleaving (the Table-7 measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conair::Conair;
use conair_runtime::{run_scripted, MachineConfig};
use conair_workloads::workload_by_name;

/// Fast-recovery and slow-recovery representatives.
const APPS: [&str; 4] = ["MySQL2", "SQLite", "HTTrack", "FFT"];

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("forced_bug_recovery");
    group.sample_size(10);
    for app in APPS {
        let w = workload_by_name(app).expect("registered workload");
        let hardened = Conair::survival().harden(&w.program);
        let machine = MachineConfig {
            lock_timeout: 200,
            ..MachineConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("survival", app), &w, |b, w| {
            b.iter(|| {
                let r = run_scripted(&hardened.program, &machine, &w.bug_script, 11);
                assert!(r.outcome.is_completed());
                r
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
