//! Criterion bench: static-analysis and transformation time per
//! application (paper Section 6.4 — "fast enough to process large
//! real-world multi-threaded software"), with and without the
//! inter-procedural pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conair::{Conair, ConairConfig};
use conair_workloads::workload_by_name;

const APPS: [&str; 4] = ["HawkNL", "HTTrack", "MySQL1", "MozillaXP"];

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_analysis");
    group.sample_size(10);
    for app in APPS {
        let w = workload_by_name(app).expect("registered workload");
        group.bench_with_input(BenchmarkId::new("full", app), &w, |b, w| {
            let pipeline = Conair::survival();
            b.iter(|| pipeline.analyze(&w.program.module))
        });
        group.bench_with_input(BenchmarkId::new("intra_only", app), &w, |b, w| {
            let pipeline = Conair::with_config(ConairConfig {
                interproc_depth: None,
                ..ConairConfig::default()
            });
            b.iter(|| pipeline.analyze(&w.program.module))
        });
        group.bench_with_input(BenchmarkId::new("harden", app), &w, |b, w| {
            let pipeline = Conair::survival();
            b.iter(|| pipeline.harden(&w.program))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
