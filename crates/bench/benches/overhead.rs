//! Criterion bench: wall-clock cost of a benign run, original vs hardened
//! (survival and fix mode) — the Table-3 overhead measurement as a
//! statistically-sound benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conair::Conair;
use conair_runtime::{run_scripted, MachineConfig};
use conair_workloads::workload_by_name;

/// A representative subset spanning sizes: the full set is exercised by the
/// `table3` binary; Criterion runs need tighter wall-clock budgets.
const APPS: [&str; 4] = ["FFT", "HawkNL", "MySQL2", "ZSNES"];

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("benign_run");
    group.sample_size(10);
    for app in APPS {
        let w = workload_by_name(app).expect("registered workload");
        let survival = Conair::survival().harden(&w.program);
        let fix = Conair::fix(w.fix_markers.clone()).harden(&w.program);
        let machine = MachineConfig::default();

        group.bench_with_input(BenchmarkId::new("original", app), &w, |b, w| {
            b.iter(|| run_scripted(&w.program, &machine, &w.benign_script, 7))
        });
        group.bench_with_input(BenchmarkId::new("survival", app), &w, |b, w| {
            b.iter(|| run_scripted(&survival.program, &machine, &w.benign_script, 7))
        });
        group.bench_with_input(BenchmarkId::new("fix", app), &w, |b, w| {
            b.iter(|| run_scripted(&fix.program, &machine, &w.benign_script, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
