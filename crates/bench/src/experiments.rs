//! Experiment drivers: one function per evaluation table/figure, returning
//! structured data the binaries render (and the integration tests assert
//! shapes over).

use conair::{Conair, ConairConfig, Mode};
use conair_analysis::RegionPolicy;
use conair_ir::FailureKind;
use conair_runtime::{
    measure_restart, run_scripted, run_trials_parallel, MachineConfig, RunOutcome, RunResult,
    TrialPool,
};
use conair_workloads::{all_workloads, build_micro, AtomicityPattern, Workload};

use crate::config::BenchConfig;

// ---------------------------------------------------------------------------
// Table 3: recovery + overhead, fix and survival mode
// ---------------------------------------------------------------------------

/// One Table-3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// Recovered in every fix-mode trial?
    pub fix_recovered: bool,
    /// Recovered in every survival-mode trial?
    pub survival_recovered: bool,
    /// Whether recovery needed a developer output oracle (✓c in the paper).
    pub conditional: bool,
    /// Fix-mode instruction overhead (fraction).
    pub fix_overhead: f64,
    /// Survival-mode instruction overhead (fraction).
    pub survival_overhead: f64,
    /// Trials run per mode.
    pub trials: usize,
}

/// Runs the Table-3 experiment.
pub fn table3(cfg: &BenchConfig) -> Vec<Table3Row> {
    all_workloads().iter().map(|w| table3_row(w, cfg)).collect()
}

fn all_trials_recover(
    w: &Workload,
    program: &conair_runtime::Program,
    machine: &MachineConfig,
    cfg: &BenchConfig,
) -> bool {
    (0..cfg.trials).all(|i| {
        let r = run_scripted(program, machine, &w.bug_script, cfg.seed0 + i as u64);
        w.run_is_correct(&r)
    })
}

fn overhead_vs_original(
    w: &Workload,
    hardened: &conair_runtime::Program,
    machine: &MachineConfig,
    cfg: &BenchConfig,
) -> (f64, f64) {
    // Benign-interleaving runs, seed-paired (paper methodology: same input,
    // no failure during measurement).
    let mut base = 0u64;
    let mut hard = 0u64;
    let mut points = 0u64;
    for i in 0..cfg.overhead_trials {
        let seed = cfg.seed0 + 1000 + i as u64;
        let b = run_scripted(&w.program, machine, &w.benign_script, seed);
        let h = run_scripted(hardened, machine, &w.benign_script, seed);
        assert!(
            b.outcome.is_completed() && h.outcome.is_completed(),
            "{}: overhead runs must not fail ({:?}/{:?})",
            w.meta.name,
            b.outcome,
            h.outcome
        );
        base += b.stats.insts + b.stats.aux_work;
        hard += h.stats.insts + h.stats.aux_work;
        points += h.stats.checkpoints;
    }
    let overhead = (hard as f64 - base as f64) / base as f64;
    (
        overhead.max(0.0),
        points as f64 / cfg.overhead_trials.max(1) as f64,
    )
}

fn table3_row(w: &Workload, cfg: &BenchConfig) -> Table3Row {
    let machine = cfg.machine();
    let survival = Conair::survival().harden(&w.program);
    let fix = Conair::fix(w.fix_markers.clone()).harden(&w.program);

    let (survival_overhead, _) = overhead_vs_original(w, &survival.program, &machine, cfg);
    let (fix_overhead, _) = overhead_vs_original(w, &fix.program, &machine, cfg);

    Table3Row {
        app: w.meta.name,
        fix_recovered: all_trials_recover(w, &fix.program, &machine, cfg),
        survival_recovered: all_trials_recover(w, &survival.program, &machine, cfg),
        conditional: w.meta.needs_oracle,
        fix_overhead,
        survival_overhead,
        trials: cfg.trials,
    }
}

// ---------------------------------------------------------------------------
// Table 4: static failure sites by kind (survival mode)
// ---------------------------------------------------------------------------

/// One Table-4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Application name.
    pub app: &'static str,
    /// Identified assertion-violation sites.
    pub assertion: usize,
    /// Identified wrong-output sites.
    pub wrong_output: usize,
    /// Identified segmentation-fault sites.
    pub seg_fault: usize,
    /// Recoverable deadlock sites (the paper counts only locks "enclosed by
    /// another lock operation" here).
    pub deadlock: usize,
}

impl Table4Row {
    /// Row total.
    pub fn total(&self) -> usize {
        self.assertion + self.wrong_output + self.seg_fault + self.deadlock
    }
}

/// Runs the Table-4 experiment.
pub fn table4() -> Vec<Table4Row> {
    all_workloads()
        .iter()
        .map(|w| {
            let plan = Conair::survival().analyze(&w.program.module);
            let count = |kind: FailureKind| {
                plan.sites
                    .iter()
                    .filter(|s| s.site.kind == kind)
                    .filter(|s| kind != FailureKind::Deadlock || s.is_recoverable())
                    .count()
            };
            Table4Row {
                app: w.meta.name,
                assertion: count(FailureKind::AssertionViolation),
                wrong_output: count(FailureKind::WrongOutput),
                seg_fault: count(FailureKind::SegFault),
                deadlock: count(FailureKind::Deadlock),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 5: reexecution points, static and dynamic, both modes
// ---------------------------------------------------------------------------

/// One Table-5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Application name.
    pub app: &'static str,
    /// Static checkpoints, survival mode.
    pub survival_static: usize,
    /// Dynamic checkpoint executions on a benign run, survival mode.
    pub survival_dynamic: u64,
    /// Static checkpoints, fix mode.
    pub fix_static: usize,
    /// Dynamic checkpoint executions, fix mode.
    pub fix_dynamic: u64,
}

/// Runs the Table-5 experiment.
pub fn table5(cfg: &BenchConfig) -> Vec<Table5Row> {
    let machine = cfg.machine();
    all_workloads()
        .iter()
        .map(|w| {
            let survival = Conair::survival().harden(&w.program);
            let fix = Conair::fix(w.fix_markers.clone()).harden(&w.program);
            let run = |p: &conair_runtime::Program| {
                run_scripted(p, &machine, &w.benign_script, cfg.seed0)
                    .stats
                    .checkpoints
            };
            Table5Row {
                app: w.meta.name,
                survival_static: survival.plan.stats.static_points,
                survival_dynamic: run(&survival.program),
                fix_static: fix.plan.stats.static_points,
                fix_dynamic: run(&fix.program),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 6: fraction of reexecution points removed by the optimization
// ---------------------------------------------------------------------------

/// One Table-6 row.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Application name.
    pub app: &'static str,
    /// Non-deadlock static points optimized away (fraction; `None` when
    /// the unoptimized count is zero — the paper's N/A).
    pub non_deadlock_static: Option<f64>,
    /// Non-deadlock dynamic point executions optimized away.
    pub non_deadlock_dynamic: Option<f64>,
    /// Deadlock static points optimized away.
    pub deadlock_static: Option<f64>,
    /// Deadlock dynamic point executions optimized away.
    pub deadlock_dynamic: Option<f64>,
}

fn optimized_fraction(unopt: usize, opt: usize) -> Option<f64> {
    (unopt > 0).then(|| (unopt.saturating_sub(opt)) as f64 / unopt as f64)
}

/// Runs the Table-6 experiment.
pub fn table6(cfg: &BenchConfig) -> Vec<Table6Row> {
    let machine = cfg.machine();
    all_workloads()
        .iter()
        .map(|w| {
            let optimized = Conair::survival();
            let unoptimized = Conair::with_config(Conair::builder().optimize(false).build());
            let plan_opt = optimized.analyze(&w.program.module);
            let plan_unopt = unoptimized.analyze(&w.program.module);

            let static_counts = |plan: &conair::HardeningPlan, deadlock: bool| {
                plan.points_for_class(deadlock).len()
            };

            // Dynamic counts: run each hardened variant on the benign
            // schedule and count checkpoint executions attributable to each
            // class. A checkpoint shared by both classes counts in both, so
            // we approximate dynamic per-class counts by scaling total
            // dynamic executions by the static class share.
            let dyn_points = |pipeline: &Conair| {
                let hp = pipeline.harden(&w.program);
                let r = run_scripted(&hp.program, &machine, &w.benign_script, cfg.seed0);
                (r.stats.checkpoints, hp.plan)
            };
            let (dyn_opt, plan_opt_run) = dyn_points(&optimized);
            let (dyn_unopt, plan_unopt_run) = dyn_points(&unoptimized);
            let dyn_class = |total: u64, plan: &conair::HardeningPlan, deadlock: bool| {
                let class = plan.points_for_class(deadlock).len() as f64;
                let all = plan.checkpoints.len().max(1) as f64;
                total as f64 * class / all
            };

            let nd_unopt_dyn = dyn_class(dyn_unopt, &plan_unopt_run, false);
            let nd_opt_dyn = dyn_class(dyn_opt, &plan_opt_run, false);
            let dl_unopt_dyn = dyn_class(dyn_unopt, &plan_unopt_run, true);
            let dl_opt_dyn = dyn_class(dyn_opt, &plan_opt_run, true);

            Table6Row {
                app: w.meta.name,
                non_deadlock_static: optimized_fraction(
                    static_counts(&plan_unopt, false),
                    static_counts(&plan_opt, false),
                ),
                non_deadlock_dynamic: (nd_unopt_dyn > 0.0)
                    .then(|| ((nd_unopt_dyn - nd_opt_dyn) / nd_unopt_dyn).max(0.0)),
                deadlock_static: optimized_fraction(
                    static_counts(&plan_unopt, true),
                    static_counts(&plan_opt, true),
                ),
                deadlock_dynamic: (dl_unopt_dyn > 0.0)
                    .then(|| ((dl_unopt_dyn - dl_opt_dyn) / dl_unopt_dyn).max(0.0)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 7: recovery time vs whole-program restart
// ---------------------------------------------------------------------------

/// One Table-7 row.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Application name.
    pub app: &'static str,
    /// ConAir recovery time in interpreter steps.
    pub recovery_steps: u64,
    /// ConAir recovery time in microseconds (steps × measured ns/step).
    pub recovery_us: f64,
    /// Recovery attempts (# retries).
    pub retries: u64,
    /// Whole-program-restart recovery time in steps.
    pub restart_steps: u64,
    /// Restart recovery time in microseconds.
    pub restart_us: f64,
    /// Seeded bug-forcing trials behind the percentile columns.
    pub trials: usize,
    /// Median per-trial retry count.
    pub retries_p50: Option<u64>,
    /// 90th-percentile per-trial retry count.
    pub retries_p90: Option<u64>,
    /// Median recovery latency in steps, pooled over every recovered site
    /// in every trial (`None` when nothing recovered).
    pub recovery_p50: Option<u64>,
    /// 90th-percentile recovery latency in steps.
    pub recovery_p90: Option<u64>,
}

/// Runs the Table-7 experiment.
pub fn table7(cfg: &BenchConfig) -> Vec<Table7Row> {
    let machine = cfg.machine();
    all_workloads()
        .iter()
        .map(|w| {
            let hardened = Conair::survival().harden(&w.program);
            let r = run_scripted(&hardened.program, &machine, &w.bug_script, cfg.seed0);
            assert!(
                r.outcome.is_completed(),
                "{}: table 7 needs a recovered run, got {:?}",
                w.meta.name,
                r.outcome
            );
            let ns_per_step = cfg.ns_per_step.unwrap_or_else(|| ns_per_step(&r));
            let recovery_steps = r.stats.max_recovery_steps().unwrap_or(0);
            let retries = r.stats.total_retries();

            // Percentiles over repeated seeded trials (the single run above
            // pins the headline numbers to seed0, matching older reports).
            // The fan-out merges per-seed results in seed order, so the
            // summary is identical for any job count.
            let summary = run_trials_parallel(
                &hardened.program,
                &machine,
                &w.bug_script,
                cfg.seed0,
                cfg.trials,
                cfg.jobs,
            );

            let restart = measure_restart(
                &w.program,
                &machine,
                &w.bug_script,
                &w.benign_script,
                cfg.seed0,
                50,
            );
            Table7Row {
                app: w.meta.name,
                recovery_steps,
                recovery_us: recovery_steps as f64 * ns_per_step / 1000.0,
                retries,
                restart_steps: restart.total_steps,
                restart_us: restart.total_steps as f64 * ns_per_step / 1000.0,
                trials: cfg.trials,
                retries_p50: summary.retries_percentile(0.50),
                retries_p90: summary.retries_percentile(0.90),
                recovery_p50: summary.recovery_percentile(0.50),
                recovery_p90: summary.recovery_percentile(0.90),
            }
        })
        .collect()
}

fn ns_per_step(r: &RunResult) -> f64 {
    if r.stats.steps == 0 {
        0.0
    } else {
        r.stats.wall.as_nanos() as f64 / r.stats.steps as f64
    }
}

// ---------------------------------------------------------------------------
// Figure 2: the four atomicity-violation patterns
// ---------------------------------------------------------------------------

/// Outcome of one Figure-2 microbenchmark under one policy.
#[derive(Debug, Clone)]
pub struct Figure2Cell {
    /// The pattern.
    pub pattern: AtomicityPattern,
    /// The region policy used for hardening.
    pub policy: RegionPolicy,
    /// Did the original (unhardened) run fail under the forced schedule?
    pub original_fails: bool,
    /// Did the hardened run recover?
    pub recovered: bool,
}

/// Runs the Figure-2 experiment across policies.
pub fn figure2(cfg: &BenchConfig) -> Vec<Figure2Cell> {
    let machine = cfg.machine();
    let mut out = Vec::new();
    for pattern in AtomicityPattern::ALL {
        for policy in RegionPolicy::ALL {
            let m = build_micro(pattern);
            let orig = run_scripted(&m.program, &machine, &m.bug_script, cfg.seed0);
            let pipeline = Conair::with_config(ConairConfig {
                mode: Mode::Survival,
                policy,
                ..ConairConfig::default()
            });
            let hardened = pipeline.harden(&m.program);
            let mut run_machine = machine;
            run_machine.buffered_writes = policy == RegionPolicy::BufferedWrites;
            // Bounded retries: unrecoverable patterns must fail fast, not
            // spin to the million-retry default.
            run_machine.max_retries = 3_000;
            let hard = run_scripted(&hardened.program, &run_machine, &m.bug_script, cfg.seed0);
            let recovered =
                hard.outcome.is_completed() && hard.outputs_for(&m.expected.0) == m.expected.1;
            out.push(Figure2Cell {
                pattern,
                policy,
                original_fails: orig.outcome.is_failure(),
                recovered,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 4: the reexecution-region design-space ablation
// ---------------------------------------------------------------------------

/// One design point on the Figure-4 spectrum.
#[derive(Debug, Clone)]
pub struct Figure4Point {
    /// Design-point label.
    pub label: &'static str,
    /// Figure-2 patterns recovered (of 4).
    pub patterns_recovered: usize,
    /// Mean instruction overhead across the ten applications.
    pub mean_overhead: f64,
    /// Mean recovery steps across the recovered Figure-2 patterns
    /// (`None` when nothing recovered).
    pub mean_recovery_steps: Option<f64>,
}

/// Runs the Figure-4 ablation: the three region policies plus
/// whole-program restart.
pub fn figure4(cfg: &BenchConfig) -> Vec<Figure4Point> {
    let machine = cfg.machine();
    let mut out = Vec::new();

    for policy in RegionPolicy::ALL {
        let mut recovered = 0;
        let mut recovery_steps = Vec::new();
        for pattern in AtomicityPattern::ALL {
            let m = build_micro(pattern);
            let pipeline = Conair::with_config(ConairConfig {
                policy,
                ..ConairConfig::default()
            });
            let hardened = pipeline.harden(&m.program);
            let mut rm = machine;
            rm.buffered_writes = policy == RegionPolicy::BufferedWrites;
            rm.max_retries = 3_000;
            let r = run_scripted(&hardened.program, &rm, &m.bug_script, cfg.seed0);
            if r.outcome.is_completed() && r.outputs_for(&m.expected.0) == m.expected.1 {
                recovered += 1;
                recovery_steps.push(r.stats.max_recovery_steps().unwrap_or(0) as f64);
            }
        }
        // Overhead across the real applications. Each workload's
        // harden-and-measure is independent, so fan out across the trial
        // pool; results come back in workload order regardless of jobs.
        let workloads = all_workloads();
        let pool = TrialPool::new(cfg.jobs);
        let overheads: Vec<f64> = pool.map(workloads.len(), |i| {
            let w = &workloads[i];
            let pipeline = Conair::with_config(ConairConfig {
                policy,
                ..ConairConfig::default()
            });
            let hardened = pipeline.harden(&w.program);
            let mut rm = machine;
            rm.buffered_writes = policy == RegionPolicy::BufferedWrites;
            overhead_vs_original(w, &hardened.program, &rm, cfg).0
        });
        out.push(Figure4Point {
            label: policy.name(),
            patterns_recovered: recovered,
            mean_overhead: mean(&overheads),
            mean_recovery_steps: (!recovery_steps.is_empty()).then(|| mean(&recovery_steps)),
        });
    }

    // Whole-program restart: recovers everything, at restart cost and with
    // zero hardening overhead.
    let mut restart_steps = Vec::new();
    let mut recovered = 0;
    for pattern in AtomicityPattern::ALL {
        let m = build_micro(pattern);
        let report = measure_restart(
            &m.program,
            &machine,
            &m.bug_script,
            &conair_runtime::ScheduleScript::none(),
            cfg.seed0,
            50,
        );
        if report.succeeded {
            recovered += 1;
            restart_steps.push(report.total_steps as f64);
        }
    }
    out.push(Figure4Point {
        label: "whole-program restart",
        patterns_recovered: recovered,
        mean_overhead: 0.0,
        mean_recovery_steps: (!restart_steps.is_empty()).then(|| mean(&restart_steps)),
    });
    out
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Table 2: application inventory with measured module sizes
// ---------------------------------------------------------------------------

/// One Table-2 row with measured synthetic-module size.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// Application type.
    pub app_type: &'static str,
    /// LOC of the real application (from the paper).
    pub paper_loc: &'static str,
    /// Instructions in our synthetic module.
    pub module_insts: usize,
    /// Failure symptom.
    pub symptom: String,
    /// Root cause.
    pub cause: String,
}

/// Builds the Table-2 inventory.
pub fn table2() -> Vec<Table2Row> {
    all_workloads()
        .iter()
        .map(|w| Table2Row {
            app: w.meta.name,
            app_type: w.meta.app_type,
            paper_loc: w.meta.paper_loc,
            module_insts: w.program.module.num_insts(),
            symptom: w.meta.symptom.to_string(),
            cause: w.meta.cause.to_string(),
        })
        .collect()
}

/// Checks an [`RunOutcome`] against a workload's documented symptom —
/// shared by tests and the summary binary.
pub fn outcome_matches_symptom(w: &Workload, outcome: &RunOutcome) -> bool {
    use conair_workloads::Symptom;
    match (w.meta.symptom, outcome) {
        (Symptom::Hang, RunOutcome::Hang { .. }) => true,
        (Symptom::Assertion, RunOutcome::Failed(f)) => f.kind == FailureKind::AssertionViolation,
        (Symptom::SegFault, RunOutcome::Failed(f)) => f.kind == FailureKind::SegFault,
        (Symptom::WrongOutput, RunOutcome::Failed(f)) => f.kind == FailureKind::WrongOutput,
        _ => false,
    }
}
