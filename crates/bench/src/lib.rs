//! # conair-bench
//!
//! The evaluation harness: one binary per table/figure of the paper's
//! evaluation (`table1` … `table7`, `figure2`, `figure4`, `study`,
//! `summary`), plus Criterion benches for overhead, recovery latency and
//! static-analysis time.
//!
//! Trial counts are environment-tunable (`CONAIR_TRIALS`,
//! `CONAIR_OVERHEAD_TRIALS`); paper-scale settings are 1000 and 20.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiments;
pub mod fmt;
pub mod report;

pub use config::BenchConfig;
pub use fmt::{micros, pct, TextTable};
