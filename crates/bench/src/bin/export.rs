//! Exports the quantitative evaluation (Tables 3, 4, 7) as JSON for
//! plotting scripts and CI regression checks.

use conair_bench::{report, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!(
        "export: {} trials per recovery cell (CONAIR_TRIALS to change)...",
        cfg.trials
    );
    let r = report::evaluation_report(&cfg);
    println!("{}", report::to_json(&r));
}
