//! Regenerates Table 7: failure recovery time under ConAir versus
//! whole-program restart, with retry/latency percentiles over the
//! configured number of seeded trials.

use conair_bench::{experiments, micros, BenchConfig, TextTable};

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

fn main() {
    let mut cfg = BenchConfig::from_env();
    cfg.apply_cli_args(std::env::args().skip(1));
    let rows = experiments::table7(&cfg);
    let mut t = TextTable::new(vec![
        "Application",
        "ConAir Time",
        "# Retries",
        "Retries p50/p90",
        "Latency p50/p90",
        "Restart Time",
        "Speedup",
    ]);
    for r in &rows {
        let speedup = if r.recovery_us > 0.0 {
            format!("{:.0}x", r.restart_us / r.recovery_us)
        } else {
            "inf".to_string()
        };
        t.row(vec![
            r.app.to_string(),
            format!("{} ({} steps)", micros(r.recovery_us), r.recovery_steps),
            r.retries.to_string(),
            format!("{}/{}", opt(r.retries_p50), opt(r.retries_p90)),
            format!("{}/{}", opt(r.recovery_p50), opt(r.recovery_p90)),
            format!("{} ({} steps)", micros(r.restart_us), r.restart_steps),
            speedup,
        ]);
    }
    println!("Table 7. Failure recovery time (forced failure-inducing interleavings)\n");
    println!("{}", t.render());
    let trials = rows.first().map_or(0, |r| r.trials);
    println!("percentiles over {trials} seeded trials per application");
    let all_faster = rows.iter().all(|r| r.recovery_steps < r.restart_steps);
    println!(
        "ConAir recovery faster than restart for every app: {}",
        if all_faster { "YES" } else { "NO" }
    );
}
