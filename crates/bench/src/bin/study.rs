//! Regenerates the Section-2 empirical-study aggregates that motivate
//! ConAir's two design observations.

use conair_bench::{pct, BenchConfig, TextTable};
use conair_study::{region_study, single_thread_study};

fn main() {
    // Accept the shared CLI flags for interface uniformity; the study
    // aggregates are static lookups, so `--jobs` changes nothing here.
    let mut cfg = BenchConfig::from_env();
    cfg.apply_cli_args(std::env::args().skip(1));
    if cfg.jobs > 1 {
        eprintln!(
            "study: static aggregates, --jobs {} has no effect",
            cfg.jobs
        );
    }
    let s = single_thread_study();
    let mut t = TextTable::new(vec!["Study", "Recoverable", "Total", "Fraction"]);
    t.row(vec![
        "Atomicity violations failing in an involved thread".to_string(),
        s.atomicity_recoverable.to_string(),
        s.atomicity_total.to_string(),
        pct(s.atomicity_fraction()),
    ]);
    t.row(vec![
        "Order violations failing in the thread of B".to_string(),
        s.order_recoverable.to_string(),
        s.order_total.to_string(),
        pct(s.order_fraction()),
    ]);
    t.row(vec![
        "Deadlocks (any involved thread's rollback recovers)".to_string(),
        "all".to_string(),
        "all".to_string(),
        pct(1.0),
    ]);
    println!("Section 2.1. Single-threaded rollback suffices for most failures\n");
    println!("{}", t.render());

    let r = region_study();
    let mut t = TextTable::new(vec!["Reexecution-region study", "Count"]);
    t.row(vec![
        "Bugs reproduced by prior tools".to_string(),
        r.total.to_string(),
    ]);
    t.row(vec![
        "Survivable by single-threaded reexecution".to_string(),
        r.single_thread.to_string(),
    ]);
    t.row(vec![
        "  of which idempotent regions".to_string(),
        r.idempotent.to_string(),
    ]);
    t.row(vec![
        "  of which contain I/O".to_string(),
        r.with_io.to_string(),
    ]);
    t.row(vec![
        "  of which contain non-idempotent writes".to_string(),
        r.with_writes.to_string(),
    ]);
    println!("Section 2.2. Short recovery regions are naturally idempotent\n");
    println!("{}", t.render());
}
