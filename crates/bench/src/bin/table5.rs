//! Regenerates Table 5: reexecution points inserted by ConAir, static and
//! dynamic, in survival and fix mode.

use conair_bench::{experiments, BenchConfig, TextTable};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = experiments::table5(&cfg);
    let mut t = TextTable::new(vec![
        "App.",
        "Survival Static",
        "Survival Dynamic",
        "Fix Static",
        "Fix Dynamic",
    ]);
    for r in &rows {
        t.row(vec![
            r.app.to_string(),
            r.survival_static.to_string(),
            r.survival_dynamic.to_string(),
            r.fix_static.to_string(),
            r.fix_dynamic.to_string(),
        ]);
    }
    println!("Table 5. The number of reexecution points inserted by ConAir\n");
    println!("{}", t.render());
    // The headline shape: survival mode inserts far more points than fix
    // mode, yet (Table 3) still costs <1%.
    let ratio_ok = rows.iter().all(|r| r.fix_static <= r.survival_static);
    println!(
        "fix-mode points <= survival-mode points for every app: {}",
        if ratio_ok { "YES" } else { "NO" }
    );
}
