//! Regenerates Table 4: static failure sites hardened by survival-mode
//! ConAir, by failure kind.

use conair_bench::{experiments, TextTable};

fn main() {
    let rows = experiments::table4();
    let mut t = TextTable::new(vec![
        "App.",
        "Assertion Violation",
        "Wrong Output",
        "Seg. Fault",
        "Deadlock",
        "Total",
    ]);
    for r in &rows {
        t.row(vec![
            r.app.to_string(),
            r.assertion.to_string(),
            r.wrong_output.to_string(),
            r.seg_fault.to_string(),
            r.deadlock.to_string(),
            r.total().to_string(),
        ]);
    }
    println!("Table 4. Static failure sites hardened by ConAir");
    println!("(site populations are the paper's Table 4 scaled ~1/10; see EXPERIMENTS.md)\n");
    println!("{}", t.render());
}
