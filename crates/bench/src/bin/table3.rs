//! Regenerates Table 3: overall recovery results and run-time overhead in
//! fix and survival mode.

use conair_bench::{experiments, pct, BenchConfig, TextTable};

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!(
        "table3: {} recovery trials and {} overhead runs per mode \
         (CONAIR_TRIALS / CONAIR_OVERHEAD_TRIALS to change)...",
        cfg.trials, cfg.overhead_trials
    );
    let rows = experiments::table3(&cfg);
    let mut t = TextTable::new(vec![
        "App.",
        "Recovered (fix)",
        "Recovered (survival)",
        "Overhead (fix)",
        "Overhead (survival)",
    ]);
    let tick = |ok: bool, cond: bool| match (ok, cond) {
        (true, false) => "yes".to_string(),
        (true, true) => "yes (w/ oracle)".to_string(),
        (false, _) => "NO".to_string(),
    };
    for r in &rows {
        t.row(vec![
            r.app.to_string(),
            tick(r.fix_recovered, r.conditional),
            tick(r.survival_recovered, r.conditional),
            pct(r.fix_overhead),
            pct(r.survival_overhead),
        ]);
    }
    println!(
        "Table 3. Overall bug recovery results ({} trials per cell)\n",
        rows.first().map_or(0, |r| r.trials)
    );
    println!("{}", t.render());
    let all = rows.iter().all(|r| r.fix_recovered && r.survival_recovered);
    println!(
        "All applications recovered: {}",
        if all { "YES" } else { "NO" }
    );
}
