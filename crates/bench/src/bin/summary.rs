//! One-shot summary: runs every experiment at reduced scale and prints the
//! headline reproduction claims next to the paper's numbers.

use conair_bench::{experiments, pct, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!(
        "summary: {} recovery trials / {} overhead runs per app...",
        cfg.trials, cfg.overhead_trials
    );

    println!("== ConAir reproduction summary ==\n");

    // Table 3 headline: everything recovers, overhead < 1%.
    let t3 = experiments::table3(&cfg);
    let all_recover = t3.iter().all(|r| r.fix_recovered && r.survival_recovered);
    let worst = t3
        .iter()
        .map(|r| r.survival_overhead)
        .fold(0.0f64, f64::max);
    println!(
        "Recovery (paper: 10/10 apps, 2 with oracle): {}/10 apps recover{}",
        t3.iter()
            .filter(|r| r.fix_recovered && r.survival_recovered)
            .count(),
        if all_recover { " -- all" } else { "" }
    );
    println!("Worst survival-mode overhead (paper: <1%): {}", pct(worst));

    // Table 4 shape: segfault sites dominate.
    let t4 = experiments::table4();
    let seg_dominates = t4
        .iter()
        .filter(|r| r.total() >= 20)
        .all(|r| r.seg_fault >= r.assertion && r.seg_fault >= r.deadlock);
    println!(
        "Seg-fault sites dominate in all large apps (paper: yes): {}",
        if seg_dominates { "yes" } else { "NO" }
    );

    // Table 7 shape: recovery orders of magnitude faster than restart.
    let t7 = experiments::table7(&cfg);
    let min_speedup = t7
        .iter()
        .filter(|r| r.recovery_steps > 0)
        .map(|r| r.restart_steps as f64 / r.recovery_steps.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    println!("Minimum recovery-vs-restart speedup (paper: 8x .. >100000x): {min_speedup:.0}x");

    // Figure 2 claim.
    let f2 = experiments::figure2(&cfg);
    let idem_ok = f2
        .iter()
        .filter(|c| c.policy == conair::RegionPolicy::Compensated)
        .all(|c| c.recovered == c.pattern.idempotent_recoverable());
    println!(
        "Figure-2 pattern recoverability matches Section 2.2: {}",
        if idem_ok { "yes" } else { "NO" }
    );
}
