//! Regenerates Table 2: the benchmark applications and their bugs.

use conair_bench::{experiments, TextTable};

fn main() {
    let rows = experiments::table2();
    let mut t = TextTable::new(vec![
        "App.",
        "App. Type",
        "LOC (paper)",
        "Module insts (ours)",
        "Failures",
        "Causes",
    ]);
    for r in rows {
        t.row(vec![
            r.app.to_string(),
            r.app_type.to_string(),
            r.paper_loc.to_string(),
            r.module_insts.to_string(),
            r.symptom,
            r.cause,
        ]);
    }
    println!("Table 2. Applications and bugs\n");
    println!("{}", t.render());
}
