//! Measures schedule-exploration throughput (schedules/sec under each
//! strategy, sequential and fanned across the trial pool) and writes the
//! numbers to `BENCH_explore.json` — the exploration datapoint of the
//! perf trajectory.
//!
//! ```text
//! bench_explore [--out BENCH_explore.json] [--label NAME] [--app NAME]
//!               [--jobs N] [--budget N] [--reps N] [--snapshot-budget N]
//!               [--dense-oracle]
//! ```
//!
//! `--dense-oracle` (requires the `dense-oracle` feature) routes every
//! schedule through the legacy per-step `&Inst` interpreter walk for
//! same-host decoded-vs-oracle comparison.
//!
//! Every figure runs the *full* budget (`stop_at_first` off) so each rep
//! explores exactly `--budget` schedules regardless of when the first
//! failure lands; throughput is the best of `--reps` repetitions, the
//! same max-over-reps noise treatment as `bench_interp`.

use std::time::Instant;

use conair_runtime::{
    explore, ExploreConfig, ExploreReport, ExploreStrategy, MachineConfig, PointMask,
};
use conair_workloads::workload_by_name;

/// The workload under measurement; FFT is the deepest benign run of the
/// catalog, so its per-schedule cost dominates the scheduler's own.
const APP: &str = "FFT";

fn main() {
    let mut out_path = "BENCH_explore.json".to_string();
    let mut label = "current".to_string();
    let mut app = APP.to_string();
    let mut jobs = 4usize;
    let mut budget = 256usize;
    let mut reps = 3usize;
    let mut snapshot_budget = 256usize;
    let mut dense_oracle = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--label" => label = args.next().expect("--label needs a name"),
            "--app" => app = args.next().expect("--app needs a workload name"),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .expect("--jobs needs a number >= 1")
            }
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .expect("--budget needs a number >= 1")
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .expect("--reps needs a number >= 1")
            }
            "--snapshot-budget" => {
                snapshot_budget = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--snapshot-budget needs a number (0 disables)")
            }
            "--dense-oracle" => {
                if !cfg!(feature = "dense-oracle") {
                    panic!("--dense-oracle requires building with `--features dense-oracle`");
                }
                dense_oracle = true;
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    let w = workload_by_name(&app).expect("registered workload");
    // Hang-prone schedules must terminate promptly or they dominate the
    // wall clock; the same bounds the catalog exploration tests use.
    let machine = MachineConfig {
        lock_timeout: 200,
        step_limit: 2_000_000,
        dense_oracle,
        ..MachineConfig::default()
    };

    // Best-of-reps throughput plus the best rep's report — the report
    // carries the self-profiling phase breakdown and the snapshot-tree
    // hit counters (identical across reps; only the wall clock moves).
    let measure = |strategy: ExploreStrategy, mask: PointMask, jobs: usize| {
        let mut best_rate = 0.0f64;
        let mut best_report: Option<ExploreReport> = None;
        for _ in 0..reps {
            let mut ec = ExploreConfig::new(strategy);
            ec.mask = mask;
            ec.budget = budget;
            ec.jobs = jobs;
            ec.stop_at_first = false;
            ec.snapshot_budget = snapshot_budget;
            let start = Instant::now();
            let report = explore(&w.program, &machine, &ec);
            // Bounded trees can exhaust below the budget; rate what ran.
            assert!(report.schedules >= 1);
            let rate = report.schedules as f64 / start.elapsed().as_secs_f64();
            if best_report.is_none() || rate > best_rate {
                best_rate = rate;
                best_report = Some(report);
            }
        }
        (best_rate, best_report.expect("reps >= 1"))
    };

    let pct = ExploreStrategy::Pct { depth: 3 };
    let bounded = ExploreStrategy::Bounded { preemptions: 2 };
    let (pct_seq, pct_report) = measure(pct, PointMask::SYNC_SHARED, 1);
    let (pct_par, _) = measure(pct, PointMask::SYNC_SHARED, jobs);
    let (bounded_seq, bounded_report) = measure(bounded, PointMask::SYNC, 1);
    let (bounded_par, _) = measure(bounded, PointMask::SYNC, jobs);

    use serde_json::Value;
    let pair = |k: &str, v: Value| (k.to_string(), v);
    let widths =
        |r: &ExploreReport| Value::Array(r.wave_widths.iter().map(|&w| Value::UInt(w)).collect());
    let entry = Value::Object(vec![
        pair("label", Value::Str(label.clone())),
        pair("app", Value::Str(app.clone())),
        pair("budget", Value::UInt(budget as u64)),
        pair("jobs", Value::UInt(jobs as u64)),
        pair("snapshot_budget", Value::UInt(snapshot_budget as u64)),
        pair("pct_schedules_per_sec", Value::Float(pct_seq)),
        pair("pct_schedules_per_sec_parallel", Value::Float(pct_par)),
        // Per-wave widths of each scheduler's (sequential) search: PCT
        // shows the single full-budget wave, bounded the 16 → 256 ramp.
        pair("pct_wave_widths", widths(&pct_report)),
        pair("bounded_wave_widths", widths(&bounded_report)),
        pair("bounded_schedules_per_sec", Value::Float(bounded_seq)),
        pair(
            "bounded_schedules_per_sec_parallel",
            Value::Float(bounded_par),
        ),
        // Phase breakdown of the sequential bounded search (µs) and how
        // well the prefix-sharing snapshot tree amortized interpretation.
        pair(
            "bounded_capture_us",
            Value::UInt(bounded_report.phases.capture_us),
        ),
        pair(
            "bounded_restore_us",
            Value::UInt(bounded_report.phases.restore_us),
        ),
        pair(
            "bounded_interpret_us",
            Value::UInt(bounded_report.phases.interpret_us),
        ),
        pair(
            "bounded_merge_us",
            Value::UInt(bounded_report.phases.merge_us),
        ),
        pair(
            "snapshot_hit_rate",
            Value::Float(if bounded_report.schedules > 0 {
                bounded_report.snapshot_hits as f64 / bounded_report.schedules as f64
            } else {
                0.0
            }),
        ),
        pair("steps_saved", Value::UInt(bounded_report.steps_saved)),
    ]);
    append_entry(&out_path, &label, entry);
}

/// Appends `entry` to the JSON trajectory file at `path`: one JSON array,
/// oldest entry first; a rerun with the same label replaces that label's
/// entry.
fn append_entry(path: &str, label: &str, entry: serde_json::Value) {
    use serde_json::Value;
    let mut entries: Vec<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| match serde_json::from_str::<Value>(&t) {
            Ok(Value::Array(items)) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    entries.retain(|e| e.get("label").and_then(Value::as_str) != Some(label));
    entries.push(entry.clone());
    let text = serde_json::to_string_pretty(&Value::Array(entries)).expect("serializes");
    std::fs::write(path, format!("{text}\n")).expect("write bench trajectory");
    println!(
        "{}",
        serde_json::to_string_pretty(&entry).expect("serializes")
    );
    println!("wrote {path}");
}
