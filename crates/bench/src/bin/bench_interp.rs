//! Measures interpreter throughput (steps/sec on a benign run, trials/sec
//! on the Table-7 recovery harness) and writes the numbers to
//! `BENCH_interp.json` — the first datapoint of the perf trajectory.
//! Additionally measures the checkpoint machinery itself on the
//! checkpoint-density stress workloads and writes per-checkpoint /
//! per-rollback costs to `BENCH_checkpoint.json`.
//!
//! ```text
//! bench_interp [--out BENCH_interp.json] [--label NAME] [--jobs N] [--reps N]
//!              [--checkpoint-out BENCH_checkpoint.json] [--checkpoint-only]
//!              [--skip-checkpoint] [--checkpoint-regs N]
//!              [--checkpoint-iters N] [--rollback-iters N]
//!              [--dense-oracle] [--dispatch-mix]
//! ```
//!
//! `--dense-oracle` (requires the `dense-oracle` feature) routes every run
//! through the legacy per-step `&Inst` interpreter walk, so the decoded
//! interpreter can be compared against it on the same host with the same
//! build. `--dispatch-mix` appends a per-opcode execution-count histogram
//! (FFT benign run + the checkpoint-density stress loop) to the JSON entry
//! — the data behind the superinstruction catalog.
//!
//! Each throughput figure is the best of `--reps` repetitions (default 3):
//! on a shared or virtualized box, transient interference only ever makes a
//! rep *slower*, so the maximum over reps is the lowest-noise estimate of
//! the machine's true rate — the same reasoning behind min-time reporting
//! in criterion-style harnesses. Cost figures (ns per checkpoint/rollback)
//! symmetrically take the minimum over reps.
//!
//! The per-checkpoint cost is differential: the checkpoint-dense loop is
//! timed against a byte-identical control whose checkpoint is a `nop`, so
//! loop overhead cancels and the number is the marginal cost of one
//! checkpoint execution in a `--checkpoint-regs`-wide frame. The
//! per-rollback cost is `wall / rollbacks` on the rollback-dense workload
//! (inclusive of the re-executed guard attempt — identical methodology
//! before and after, so the ratio is meaningful).

use std::time::Instant;

use conair::Conair;
use conair_bench::BenchConfig;
use conair_runtime::run_scripted;
use conair_workloads::{
    checkpoint_dense_control, checkpoint_dense_program, rollback_dense_program, workload_by_name,
};

/// Benign-run repetitions for the steps/sec figure.
const STEP_RUNS: usize = 40;
/// Seeded bug-forcing trials for the trials/sec figure.
const TRIALS: usize = 200;
/// The workload under measurement (largest step count per benign run).
const APP: &str = "FFT";
/// Guard failures (= attempts) per pass on the rollback-dense workload.
const FAILS_PER_PASS: u64 = 4;

fn main() {
    let mut out_path = "BENCH_interp.json".to_string();
    let mut checkpoint_out = "BENCH_checkpoint.json".to_string();
    let mut label = "current".to_string();
    let mut jobs = 4usize;
    let mut reps = 3usize;
    let mut checkpoint_regs = 256usize;
    let mut checkpoint_iters = 2_000_000u64;
    let mut rollback_iters = 300_000u64;
    let mut run_throughput = true;
    let mut run_checkpoint = true;
    let mut dense_oracle = false;
    let mut dispatch_mix = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--checkpoint-out" => {
                checkpoint_out = args.next().expect("--checkpoint-out needs a path")
            }
            "--label" => label = args.next().expect("--label needs a name"),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs needs a number")
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .expect("--reps needs a number >= 1")
            }
            "--checkpoint-regs" => {
                checkpoint_regs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .expect("--checkpoint-regs needs a number >= 1")
            }
            "--checkpoint-iters" => {
                checkpoint_iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n >= 1)
                    .expect("--checkpoint-iters needs a number >= 1")
            }
            "--rollback-iters" => {
                rollback_iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n >= 1)
                    .expect("--rollback-iters needs a number >= 1")
            }
            "--checkpoint-only" => run_throughput = false,
            "--skip-checkpoint" => run_checkpoint = false,
            "--dense-oracle" => {
                if !cfg!(feature = "dense-oracle") {
                    panic!("--dense-oracle requires building with `--features dense-oracle`");
                }
                dense_oracle = true;
            }
            "--dispatch-mix" => dispatch_mix = true,
            other => panic!("unknown flag `{other}`"),
        }
    }
    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(0.0f64, f64::max);

    if run_checkpoint {
        checkpoint_bench(
            &checkpoint_out,
            &label,
            reps,
            checkpoint_regs,
            checkpoint_iters,
            rollback_iters,
            dense_oracle,
        );
    }
    if !run_throughput {
        return;
    }

    let cfg = BenchConfig::from_env();
    let mut machine = cfg.machine();
    machine.dense_oracle = dense_oracle;
    let w = workload_by_name(APP).expect("registered workload");
    let hardened = Conair::survival().harden(&w.program);

    // Steps/sec: seed-paired benign runs of the hardened program.
    let steps_per_sec = best(&|| {
        let start = Instant::now();
        let mut steps = 0u64;
        for i in 0..STEP_RUNS {
            let r = run_scripted(
                &hardened.program,
                &machine,
                &w.benign_script,
                cfg.seed0 + i as u64,
            );
            assert!(r.outcome.is_completed(), "benign run must complete");
            steps += r.stats.steps;
        }
        steps as f64 / start.elapsed().as_secs_f64()
    });

    // Trials/sec: the Table-7 recovery harness, sequential.
    let trials_per_sec_seq = best(&|| {
        let start = Instant::now();
        let summary = conair_runtime::run_trials(
            &hardened.program,
            &machine,
            &w.bug_script,
            cfg.seed0,
            TRIALS,
        );
        assert!(summary.all_completed(), "recovery trials must complete");
        TRIALS as f64 / start.elapsed().as_secs_f64()
    });

    // Trials/sec: same workload fanned across the trial pool.
    let trials_per_sec_par = best(&|| {
        let start = Instant::now();
        let par = conair_runtime::run_trials_parallel(
            &hardened.program,
            &machine,
            &w.bug_script,
            cfg.seed0,
            TRIALS,
            jobs,
        );
        assert!(
            par.all_completed(),
            "parallel recovery trials must complete"
        );
        TRIALS as f64 / start.elapsed().as_secs_f64()
    });

    use serde_json::Value;
    let pair = |k: &str, v: Value| (k.to_string(), v);
    let mut fields = vec![
        pair("label", Value::Str(label.clone())),
        pair("app", Value::Str(APP.to_string())),
        pair("benign_runs", Value::UInt(STEP_RUNS as u64)),
        pair("trials", Value::UInt(TRIALS as u64)),
        pair("jobs", Value::UInt(jobs as u64)),
        pair("steps_per_sec", Value::Float(steps_per_sec)),
        pair(
            "trials_per_sec_sequential",
            Value::Float(trials_per_sec_seq),
        ),
        pair("trials_per_sec_parallel", Value::Float(trials_per_sec_par)),
    ];
    if dispatch_mix {
        let fft_mix = dispatch_mix_of(&hardened.program, &machine, &w.benign_script, cfg.seed0);
        let stress = checkpoint_dense_program(checkpoint_regs, MIX_STRESS_ITERS);
        let stress_mix = dispatch_mix_of(
            &stress,
            &machine,
            &conair_runtime::ScheduleScript::none(),
            cfg.seed0,
        );
        fields.push(pair(
            "dispatch_mix",
            Value::Object(vec![
                pair("fft", fft_mix),
                pair("checkpoint_stress", stress_mix),
            ]),
        ));
    }
    append_entry(&out_path, &label, Value::Object(fields));
}

/// Iterations for the `--dispatch-mix` checkpoint-stress run: the mix's
/// *shape* converges long before the throughput loop's 2M iterations.
const MIX_STRESS_ITERS: u64 = 50_000;

/// Runs `program` once with a per-opcode dispatch counter attached and
/// returns the nonzero counts as a mnemonic-keyed JSON object.
fn dispatch_mix_of(
    program: &conair_runtime::Program,
    config: &conair_runtime::MachineConfig,
    script: &conair_runtime::ScheduleScript,
    seed: u64,
) -> serde_json::Value {
    use conair_runtime::{Machine, MetricsRegistry, SeededRandom};
    let registry = MetricsRegistry::new();
    let mut sched = SeededRandom::new(seed);
    let r = Machine::new(program, *config)
        .with_script(script)
        .with_dispatch_mix(&registry)
        .run(&mut sched);
    assert!(r.outcome.is_completed(), "dispatch-mix run must complete");
    let counts = conair_ir::MNEMONICS
        .iter()
        .enumerate()
        .filter_map(|(op, mnemonic)| {
            let n = registry.dispatch_mix[op].get();
            (n > 0).then(|| (mnemonic.to_string(), serde_json::Value::UInt(n)))
        })
        .collect();
    serde_json::Value::Object(counts)
}

/// Measures the checkpoint machinery on the stress workloads and appends
/// the costs to the `BENCH_checkpoint.json` trajectory.
fn checkpoint_bench(
    out_path: &str,
    label: &str,
    reps: usize,
    regs: usize,
    checkpoint_iters: u64,
    rollback_iters: u64,
    dense_oracle: bool,
) {
    use conair_runtime::{run_once, MachineConfig, RunResult};
    let lowest = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min);
    let config = move || MachineConfig {
        dense_oracle,
        ..MachineConfig::default()
    };
    let timed = |p: &conair_runtime::Program| -> RunResult {
        let r = run_once(p, &config(), 0);
        assert!(r.outcome.is_completed(), "stress run must complete");
        r
    };

    let dense = checkpoint_dense_program(regs, checkpoint_iters);
    let control = checkpoint_dense_control(regs, checkpoint_iters);
    let rollback = rollback_dense_program(regs, rollback_iters, FAILS_PER_PASS);

    // Marginal per-checkpoint cost: checkpoint-dense loop minus its
    // nop-control, divided by the number of checkpoints executed. Each
    // wall is the minimum over reps *before* subtracting, so one noisy
    // control rep cannot deflate the difference.
    let dense_wall = lowest(&|| {
        let d = timed(&dense);
        assert_eq!(d.stats.checkpoints, checkpoint_iters);
        d.stats.wall.as_secs_f64()
    });
    let control_wall = lowest(&|| timed(&control).stats.wall.as_secs_f64());
    let per_checkpoint_ns = (dense_wall - control_wall).max(0.0) * 1e9 / checkpoint_iters as f64;

    // Per-rollback cost, inclusive of the re-executed attempt.
    let rollbacks = rollback_iters * (FAILS_PER_PASS - 1);
    let per_rollback_ns = lowest(&|| {
        let r = timed(&rollback);
        assert_eq!(r.stats.rollbacks, rollbacks);
        r.stats.wall.as_secs_f64() * 1e9 / r.stats.rollbacks as f64
    });

    use serde_json::Value;
    let pair = |k: &str, v: Value| (k.to_string(), v);
    let entry = Value::Object(vec![
        pair("label", Value::Str(label.to_string())),
        pair("workload", Value::Str("checkpoint_stress".to_string())),
        pair("frame_regs", Value::UInt(regs as u64)),
        pair("checkpoint_iters", Value::UInt(checkpoint_iters)),
        pair("rollback_iters", Value::UInt(rollback_iters)),
        pair("fails_per_pass", Value::UInt(FAILS_PER_PASS)),
        pair("rollbacks", Value::UInt(rollbacks)),
        pair("per_checkpoint_ns", Value::Float(per_checkpoint_ns)),
        pair("per_rollback_ns", Value::Float(per_rollback_ns)),
    ]);
    append_entry(out_path, label, entry);
}

/// Appends `entry` to the JSON trajectory file at `path`: one JSON array,
/// oldest entry first; a rerun with the same label replaces that label's
/// entry.
fn append_entry(path: &str, label: &str, entry: serde_json::Value) {
    use serde_json::Value;
    let mut entries: Vec<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| match serde_json::from_str::<Value>(&t) {
            Ok(Value::Array(items)) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    entries.retain(|e| e.get("label").and_then(Value::as_str) != Some(label));
    entries.push(entry.clone());
    let text = serde_json::to_string_pretty(&Value::Array(entries)).expect("serializes");
    std::fs::write(path, format!("{text}\n")).expect("write bench trajectory");
    println!(
        "{}",
        serde_json::to_string_pretty(&entry).expect("serializes")
    );
    println!("wrote {path}");
}
