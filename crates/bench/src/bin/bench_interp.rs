//! Measures interpreter throughput (steps/sec on a benign run, trials/sec
//! on the Table-7 recovery harness) and writes the numbers to
//! `BENCH_interp.json` — the first datapoint of the perf trajectory.
//!
//! ```text
//! bench_interp [--out BENCH_interp.json] [--label NAME] [--jobs N] [--reps N]
//! ```
//!
//! Each throughput figure is the best of `--reps` repetitions (default 3):
//! on a shared or virtualized box, transient interference only ever makes a
//! rep *slower*, so the maximum over reps is the lowest-noise estimate of
//! the machine's true rate — the same reasoning behind min-time reporting
//! in criterion-style harnesses.

use std::time::Instant;

use conair::Conair;
use conair_bench::BenchConfig;
use conair_runtime::run_scripted;
use conair_workloads::workload_by_name;

/// Benign-run repetitions for the steps/sec figure.
const STEP_RUNS: usize = 40;
/// Seeded bug-forcing trials for the trials/sec figure.
const TRIALS: usize = 200;
/// The workload under measurement (largest step count per benign run).
const APP: &str = "FFT";

fn main() {
    let mut out_path = "BENCH_interp.json".to_string();
    let mut label = "current".to_string();
    let mut jobs = 4usize;
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--label" => label = args.next().expect("--label needs a name"),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs needs a number")
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .expect("--reps needs a number >= 1")
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(0.0f64, f64::max);

    let cfg = BenchConfig::from_env();
    let machine = cfg.machine();
    let w = workload_by_name(APP).expect("registered workload");
    let hardened = Conair::survival().harden(&w.program);

    // Steps/sec: seed-paired benign runs of the hardened program.
    let steps_per_sec = best(&|| {
        let start = Instant::now();
        let mut steps = 0u64;
        for i in 0..STEP_RUNS {
            let r = run_scripted(
                &hardened.program,
                machine.clone(),
                w.benign_script.clone(),
                cfg.seed0 + i as u64,
            );
            assert!(r.outcome.is_completed(), "benign run must complete");
            steps += r.stats.steps;
        }
        steps as f64 / start.elapsed().as_secs_f64()
    });

    // Trials/sec: the Table-7 recovery harness, sequential.
    let trials_per_sec_seq = best(&|| {
        let start = Instant::now();
        let summary = conair_runtime::run_trials(
            &hardened.program,
            &machine,
            &w.bug_script,
            cfg.seed0,
            TRIALS,
        );
        assert!(summary.all_completed(), "recovery trials must complete");
        TRIALS as f64 / start.elapsed().as_secs_f64()
    });

    // Trials/sec: same workload fanned across the trial pool.
    let trials_per_sec_par = best(&|| {
        let start = Instant::now();
        let par = conair_runtime::run_trials_parallel(
            &hardened.program,
            &machine,
            &w.bug_script,
            cfg.seed0,
            TRIALS,
            jobs,
        );
        assert!(
            par.all_completed(),
            "parallel recovery trials must complete"
        );
        TRIALS as f64 / start.elapsed().as_secs_f64()
    });

    use serde_json::Value;
    let pair = |k: &str, v: Value| (k.to_string(), v);
    let entry = Value::Object(vec![
        pair("label", Value::Str(label.clone())),
        pair("app", Value::Str(APP.to_string())),
        pair("benign_runs", Value::UInt(STEP_RUNS as u64)),
        pair("trials", Value::UInt(TRIALS as u64)),
        pair("jobs", Value::UInt(jobs as u64)),
        pair("steps_per_sec", Value::Float(steps_per_sec)),
        pair(
            "trials_per_sec_sequential",
            Value::Float(trials_per_sec_seq),
        ),
        pair("trials_per_sec_parallel", Value::Float(trials_per_sec_par)),
    ]);
    // Append to the trajectory file: one JSON array, oldest entry first; a
    // rerun with the same label replaces that label's entry.
    let mut entries: Vec<Value> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| match serde_json::from_str::<Value>(&t) {
            Ok(Value::Array(items)) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    entries.retain(|e| e.get("label").and_then(Value::as_str) != Some(label.as_str()));
    entries.push(entry.clone());
    let text = serde_json::to_string_pretty(&Value::Array(entries)).expect("serializes");
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_interp.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&entry).expect("serializes")
    );
    println!("wrote {out_path}");
}
