//! Regenerates Table 1: the qualitative property comparison among
//! concurrency-bug fixing and survival techniques.

use conair::properties::{Property, Technique};
use conair_bench::TextTable;

fn main() {
    let mut t = TextTable::new(vec![
        "Property".to_string(),
        Technique::AutomaticFixing.name().to_string(),
        Technique::ProhibitingInterleaving.name().to_string(),
        Technique::RollbackRecovery.name().to_string(),
        Technique::ConAir.name().to_string(),
    ]);
    for p in Property::ALL {
        t.row(vec![
            p.to_string(),
            Technique::AutomaticFixing.satisfies(p).glyph().to_string(),
            Technique::ProhibitingInterleaving
                .satisfies(p)
                .glyph()
                .to_string(),
            Technique::RollbackRecovery.satisfies(p).glyph().to_string(),
            Technique::ConAir.satisfies(p).glyph().to_string(),
        ]);
    }
    println!("Table 1. Property comparison (+: yes; -: no; *: not all at once)\n");
    println!("{}", t.render());
}
