//! Regenerates Figure 4: the reexecution-region design-space trade-off —
//! recovery coverage versus overhead and recovery speed along the spectrum
//! from idempotent regions to whole-program restart.

use conair_bench::{experiments, pct, BenchConfig, TextTable};

fn main() {
    let mut cfg = BenchConfig::from_env();
    cfg.apply_cli_args(std::env::args().skip(1));
    eprintln!(
        "figure4: running the design-space ablation (this hardens every app under every policy)..."
    );
    let points = experiments::figure4(&cfg);
    let mut t = TextTable::new(vec![
        "Design point",
        "Fig.2 patterns recovered",
        "Mean overhead",
        "Mean recovery (steps)",
    ]);
    for p in &points {
        t.row(vec![
            p.label.to_string(),
            format!("{}/4", p.patterns_recovered),
            pct(p.mean_overhead),
            p.mean_recovery_steps
                .map_or("N/A".to_string(), |s| format!("{s:.0}")),
        ]);
    }
    println!("Figure 4. Reexecution-region design spectrum");
    println!("(left to right: more bugs recovered; more overhead / slower recovery)\n");
    println!("{}", t.render());
}
