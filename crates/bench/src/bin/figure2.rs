//! Regenerates Figure 2's claims: which atomicity-violation patterns are
//! recoverable by single-threaded rollback, under each region policy.

use conair_bench::{experiments, BenchConfig, TextTable};

fn main() {
    let cfg = BenchConfig::from_env();
    let cells = experiments::figure2(&cfg);
    let mut t = TextTable::new(vec![
        "Pattern",
        "Policy",
        "Original fails",
        "Hardened recovers",
    ]);
    for c in &cells {
        t.row(vec![
            c.pattern.name().to_string(),
            c.policy.name().to_string(),
            if c.original_fails { "yes" } else { "no" }.to_string(),
            if c.recovered { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("Figure 2. Atomicity-violation patterns vs region policy");
    println!("(Section 2.2: only RAW and WAR need shared-write reexecution)\n");
    println!("{}", t.render());
}
