//! Regenerates Table 6: the percentage of reexecution points removed by
//! the Section-4.2 unrecoverable-site optimization.

use conair_bench::{experiments, pct, BenchConfig, TextTable};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = experiments::table6(&cfg);
    let fmt = |v: Option<f64>| v.map_or("N/A".to_string(), pct);
    let mut t = TextTable::new(vec![
        "App.",
        "Non-DL Static",
        "Non-DL Dynamic",
        "DL Static",
        "DL Dynamic",
    ]);
    for r in &rows {
        t.row(vec![
            r.app.to_string(),
            fmt(r.non_deadlock_static),
            fmt(r.non_deadlock_dynamic),
            fmt(r.deadlock_static),
            fmt(r.deadlock_dynamic),
        ]);
    }
    println!("Table 6. Reexecution points optimized away (N/A: zero unoptimized points)\n");
    println!("{}", t.render());
}
