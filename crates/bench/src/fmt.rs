//! Plain-text table rendering for the experiment binaries.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                let pad = widths[i].saturating_sub(c.chars().count());
                if i + 1 < cells.len() {
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats microseconds compactly.
pub fn micros(us: f64) -> String {
    if us >= 1000.0 {
        format!("{:.1}ms", us / 1000.0)
    } else {
        format!("{us:.0}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["App", "Value"]);
        t.row(vec!["FFT", "1"]);
        t.row(vec!["Transmission", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("Transmission"));
        // Columns align: "Value" header and "1" start at same offset.
        let header_off = lines[0].find("Value").unwrap();
        let row_off = lines[2].find('1').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["A", "B", "C"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(pct(0.0012), "0.1%");
        assert_eq!(micros(250.0), "250us");
        assert_eq!(micros(2500.0), "2.5ms");
    }
}
