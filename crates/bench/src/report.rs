//! Machine-readable export of the evaluation results.
//!
//! Serializes the experiment rows to JSON so downstream tooling (plotting
//! scripts, CI regression checks against EXPERIMENTS.md) can consume the
//! reproduction's numbers without scraping table text.

use serde::Serialize;

use crate::config::BenchConfig;
use crate::experiments;

/// JSON-friendly projection of one Table-3 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Json {
    /// Application name.
    pub app: String,
    /// All fix-mode trials recovered.
    pub fix_recovered: bool,
    /// All survival-mode trials recovered.
    pub survival_recovered: bool,
    /// Recovery required a developer output oracle.
    pub needs_oracle: bool,
    /// Fix-mode instruction overhead (fraction).
    pub fix_overhead: f64,
    /// Survival-mode instruction overhead (fraction).
    pub survival_overhead: f64,
}

/// JSON-friendly projection of one Table-4 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Json {
    /// Application name.
    pub app: String,
    /// Assertion-violation sites.
    pub assertion: usize,
    /// Wrong-output sites.
    pub wrong_output: usize,
    /// Segmentation-fault sites.
    pub seg_fault: usize,
    /// Recoverable deadlock sites.
    pub deadlock: usize,
    /// Row total.
    pub total: usize,
}

/// JSON-friendly projection of one Table-7 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table7Json {
    /// Application name.
    pub app: String,
    /// ConAir recovery (interpreter steps).
    pub recovery_steps: u64,
    /// Recovery attempts.
    pub retries: u64,
    /// Whole-program restart (steps).
    pub restart_steps: u64,
    /// restart / recovery speedup.
    pub speedup: f64,
    /// Median per-trial retry count over the seeded trials.
    pub retries_p50: Option<u64>,
    /// 90th-percentile per-trial retry count.
    pub retries_p90: Option<u64>,
    /// Median recovery latency (steps) over every recovered site.
    pub recovery_p50: Option<u64>,
    /// 90th-percentile recovery latency (steps).
    pub recovery_p90: Option<u64>,
}

/// The complete machine-readable evaluation report.
#[derive(Debug, Clone, Serialize)]
pub struct EvaluationReport {
    /// Trials per recovery cell.
    pub trials: usize,
    /// Table 3.
    pub table3: Vec<Table3Json>,
    /// Table 4.
    pub table4: Vec<Table4Json>,
    /// Table 7.
    pub table7: Vec<Table7Json>,
}

/// Runs the quantitative experiments and assembles the report.
pub fn evaluation_report(cfg: &BenchConfig) -> EvaluationReport {
    let table3 = experiments::table3(cfg)
        .into_iter()
        .map(|r| Table3Json {
            app: r.app.to_string(),
            fix_recovered: r.fix_recovered,
            survival_recovered: r.survival_recovered,
            needs_oracle: r.conditional,
            fix_overhead: r.fix_overhead,
            survival_overhead: r.survival_overhead,
        })
        .collect();
    let table4 = experiments::table4()
        .into_iter()
        .map(|r| Table4Json {
            app: r.app.to_string(),
            assertion: r.assertion,
            wrong_output: r.wrong_output,
            seg_fault: r.seg_fault,
            deadlock: r.deadlock,
            total: r.total(),
        })
        .collect();
    let table7 = experiments::table7(cfg)
        .into_iter()
        .map(|r| Table7Json {
            app: r.app.to_string(),
            recovery_steps: r.recovery_steps,
            retries: r.retries,
            restart_steps: r.restart_steps,
            speedup: if r.recovery_steps > 0 {
                r.restart_steps as f64 / r.recovery_steps as f64
            } else {
                f64::INFINITY
            },
            retries_p50: r.retries_p50,
            retries_p90: r.retries_p90,
            recovery_p50: r.recovery_p50,
            recovery_p90: r.recovery_p90,
        })
        .collect();
    EvaluationReport {
        trials: cfg.trials,
        table3,
        table4,
        table7,
    }
}

/// Serializes the report to pretty JSON.
///
/// # Panics
///
/// Never panics: the report contains no non-finite floats except speedup,
/// which is clamped before serialization.
pub fn to_json(report: &EvaluationReport) -> String {
    let mut clamped = report.clone();
    for row in &mut clamped.table7 {
        if !row.speedup.is_finite() {
            row.speedup = f64::MAX;
        }
    }
    serde_json::to_string_pretty(&clamped).expect("report serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_covers_all_apps() {
        let cfg = BenchConfig {
            trials: 1,
            overhead_trials: 1,
            seed0: 1,
            ..BenchConfig::default()
        };
        let report = evaluation_report(&cfg);
        assert_eq!(report.table3.len(), 10);
        assert_eq!(report.table4.len(), 10);
        assert_eq!(report.table7.len(), 10);
        let json = to_json(&report);
        assert!(json.contains("\"app\": \"FFT\""));
        assert!(json.contains("\"survival_recovered\": true"));
        // Parse back: valid JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["table3"].as_array().unwrap().len(), 10);
        assert_eq!(v["trials"], 1);
    }
}
