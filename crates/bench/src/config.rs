//! Experiment sizing, overridable from the environment and the command
//! line.

use conair_runtime::MachineConfig;

/// Trial counts for the experiment binaries.
///
/// Defaults are sized for minutes-scale reruns of the full suite; the paper
/// used 1000 recovery trials and 20 overhead runs per program — set
/// `CONAIR_TRIALS=1000` / `CONAIR_OVERHEAD_TRIALS=20` to match.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Recovery trials per (workload, mode).
    pub trials: usize,
    /// Seed-paired runs for overhead measurement.
    pub overhead_trials: usize,
    /// First scheduler seed.
    pub seed0: u64,
    /// Worker threads for trial fan-out (`run_trials_parallel`). `1` keeps
    /// everything on the calling thread. Results are merged in seed order,
    /// so any job count produces the same numbers.
    pub jobs: usize,
    /// Pinned nanoseconds-per-step conversion for the time columns. When
    /// unset, each experiment derives it from its own wall clock — fine for
    /// a single report, but nondeterministic across runs; pin it (e.g.
    /// `CONAIR_NS_PER_STEP=25`) to make reports byte-identical across
    /// reruns and `--jobs` settings.
    pub ns_per_step: Option<f64>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            trials: 50,
            overhead_trials: 5,
            seed0: 1,
            jobs: 1,
            ns_per_step: None,
        }
    }
}

impl BenchConfig {
    /// Reads overrides from `CONAIR_TRIALS`, `CONAIR_OVERHEAD_TRIALS`,
    /// `CONAIR_SEED`, `CONAIR_JOBS`, and `CONAIR_NS_PER_STEP`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_usize("CONAIR_TRIALS") {
            cfg.trials = v.max(1);
        }
        if let Some(v) = env_usize("CONAIR_OVERHEAD_TRIALS") {
            cfg.overhead_trials = v.max(1);
        }
        if let Some(v) = env_usize("CONAIR_SEED") {
            cfg.seed0 = v as u64;
        }
        if let Some(v) = env_usize("CONAIR_JOBS") {
            cfg.jobs = v.max(1);
        }
        if let Ok(v) = std::env::var("CONAIR_NS_PER_STEP") {
            if let Ok(ns) = v.parse::<f64>() {
                if ns > 0.0 {
                    cfg.ns_per_step = Some(ns);
                }
            }
        }
        cfg
    }

    /// Applies command-line overrides: `--jobs N` and `--trials N` (both
    /// also accepted as `--jobs=N`). Unknown arguments are ignored so the
    /// binaries stay forgiving about extra flags.
    pub fn apply_cli_args<I: IntoIterator<Item = String>>(&mut self, args: I) {
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |key: &str| -> Option<usize> {
                if let Some(rest) = arg.strip_prefix(&format!("{key}=")) {
                    rest.parse().ok()
                } else if arg == key {
                    args.next().and_then(|v| v.parse().ok())
                } else {
                    None
                }
            };
            if let Some(n) = take("--jobs") {
                self.jobs = n.max(1);
            } else if let Some(n) = take("--trials") {
                self.trials = n.max(1);
            }
        }
    }

    /// The machine configuration used by every experiment.
    pub fn machine(&self) -> MachineConfig {
        MachineConfig {
            lock_timeout: 200,
            step_limit: 50_000_000,
            ..MachineConfig::default()
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BenchConfig::default();
        assert!(c.trials >= 1);
        assert!(c.overhead_trials >= 1);
        assert_eq!(c.jobs, 1);
        assert!(c.ns_per_step.is_none());
        assert!(c.machine().step_limit > 1_000_000);
    }

    #[test]
    fn cli_args_override_jobs_and_trials() {
        let mut c = BenchConfig::default();
        c.apply_cli_args(["--jobs", "4", "--trials=200"].map(String::from));
        assert_eq!(c.jobs, 4);
        assert_eq!(c.trials, 200);

        let mut c = BenchConfig::default();
        c.apply_cli_args(["--jobs=0", "--unknown", "x"].map(String::from));
        assert_eq!(c.jobs, 1, "jobs clamps to at least 1");
    }
}
