//! Experiment sizing, overridable from the environment.

use conair_runtime::MachineConfig;

/// Trial counts for the experiment binaries.
///
/// Defaults are sized for minutes-scale reruns of the full suite; the paper
/// used 1000 recovery trials and 20 overhead runs per program — set
/// `CONAIR_TRIALS=1000` / `CONAIR_OVERHEAD_TRIALS=20` to match.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Recovery trials per (workload, mode).
    pub trials: usize,
    /// Seed-paired runs for overhead measurement.
    pub overhead_trials: usize,
    /// First scheduler seed.
    pub seed0: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            trials: 50,
            overhead_trials: 5,
            seed0: 1,
        }
    }
}

impl BenchConfig {
    /// Reads overrides from `CONAIR_TRIALS`, `CONAIR_OVERHEAD_TRIALS`, and
    /// `CONAIR_SEED`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_usize("CONAIR_TRIALS") {
            cfg.trials = v.max(1);
        }
        if let Some(v) = env_usize("CONAIR_OVERHEAD_TRIALS") {
            cfg.overhead_trials = v.max(1);
        }
        if let Some(v) = env_usize("CONAIR_SEED") {
            cfg.seed0 = v as u64;
        }
        cfg
    }

    /// The machine configuration used by every experiment.
    pub fn machine(&self) -> MachineConfig {
        MachineConfig {
            lock_timeout: 200,
            step_limit: 50_000_000,
            ..MachineConfig::default()
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BenchConfig::default();
        assert!(c.trials >= 1);
        assert!(c.overhead_trials >= 1);
        assert!(c.machine().step_limit > 1_000_000);
    }
}
