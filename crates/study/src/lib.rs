//! # conair-study
//!
//! The empirical concurrency-bug studies that motivate ConAir's design
//! (paper Section 2), as data plus aggregate computations:
//!
//! * **Section 2.1** — single-threaded rollback suffices for most
//!   concurrency-bug failures: ~92% of studied atomicity violations and
//!   ~52% of studied order violations fail in a thread whose rollback
//!   recovers them (and deadlocks always do).
//! * **Section 2.2** — of 26 bugs reproduced by prior tools, 20 are
//!   survivable by single-threaded reexecution, and 16 of those 20 regions
//!   are already idempotent — the observation that makes featherweight
//!   recovery possible.
//!
//! The paper publishes aggregates only; the per-bug catalogs here are
//! synthesized to reproduce every published aggregate exactly (see
//! DESIGN.md).
//!
//! ## Example
//!
//! ```rust
//! let s = conair_study::single_thread_study();
//! assert_eq!(s.atomicity_recoverable, 47);
//! assert_eq!(s.atomicity_total, 51);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod catalogs;
mod records;
mod stats;

pub use catalogs::{atomicity_bugs, order_bugs, reproduced_bugs};
pub use records::{AtomicityBug, AtomicitySubtype, OrderBug, RegionCharacter, ReproducedBug};
pub use stats::{region_study, single_thread_study, RegionStudy, SingleThreadStudy};
