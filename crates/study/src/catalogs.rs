//! The three synthetic bug catalogs, constructed to reproduce the paper's
//! published aggregates exactly:
//!
//! * atomicity study: 47 of 51 bugs fail in an involved thread (~92%);
//! * order study: 11 of 21 bugs fail in the thread of `B` (~52%);
//! * reproduced-bug study: 20 of 26 survivable by single-threaded
//!   reexecution; of those 20 regions, 16 idempotent, 2 with I/O, 2 with
//!   non-idempotent writes.

use crate::records::{AtomicityBug, AtomicitySubtype, OrderBug, RegionCharacter, ReproducedBug};

/// The 51-bug atomicity-violation catalog.
///
/// Sub-pattern mix follows the common-pattern discussion of Section 2.1
/// (reads racing with writes dominate; WAW and WAR are rarer).
pub fn atomicity_bugs() -> Vec<AtomicityBug> {
    let mut bugs = Vec::with_capacity(51);
    // 47 fail in an involved thread, 4 elsewhere.
    let subtypes = [
        AtomicitySubtype::Rar,
        AtomicitySubtype::Raw,
        AtomicitySubtype::Waw,
        AtomicitySubtype::War,
    ];
    for i in 0..51u32 {
        bugs.push(AtomicityBug {
            id: i,
            subtype: subtypes[(i % 4) as usize],
            fails_in_involved_thread: i < 47,
        });
    }
    bugs
}

/// The 21-bug order-violation catalog (11 fail in the thread of `B`).
pub fn order_bugs() -> Vec<OrderBug> {
    (0..21u32)
        .map(|i| OrderBug {
            id: i,
            fails_in_thread_of_b: i < 11,
        })
        .collect()
}

/// The 26 bugs reproduced by six previously-published tools.
pub fn reproduced_bugs() -> Vec<ReproducedBug> {
    let tools = [
        "AFix (PLDI'11)",
        "Deadlock-Immunity (OSDI'08)",
        "DefUse (OOPSLA'10)",
        "TxBugs (ASPLOS'12)",
        "ConMem (ASPLOS'10)",
        "ConSeq (ASPLOS'11)",
    ];
    let mut bugs = Vec::with_capacity(26);
    for i in 0..26u32 {
        let single = i < 20;
        let region = if !single {
            None
        } else if i < 16 {
            Some(RegionCharacter::Idempotent)
        } else if i < 18 {
            Some(RegionCharacter::ContainsIo)
        } else {
            Some(RegionCharacter::NonIdempotentWrites)
        };
        bugs.push(ReproducedBug {
            id: i,
            source_tool: tools[(i % 6) as usize],
            single_thread_recoverable: single,
            region,
        });
    }
    bugs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes() {
        assert_eq!(atomicity_bugs().len(), 51);
        assert_eq!(order_bugs().len(), 21);
        assert_eq!(reproduced_bugs().len(), 26);
    }

    #[test]
    fn all_four_subtypes_present() {
        use std::collections::HashSet;
        let kinds: HashSet<_> = atomicity_bugs().into_iter().map(|b| b.subtype).collect();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = reproduced_bugs().into_iter().map(|b| b.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 26);
    }

    #[test]
    fn unsurvivable_bugs_have_no_region() {
        for b in reproduced_bugs() {
            assert_eq!(b.single_thread_recoverable, b.region.is_some());
        }
    }
}
