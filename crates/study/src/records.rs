//! Record types for the Section-2 empirical bug studies.
//!
//! The paper derives its two key observations from three studies of
//! previously-published real-world concurrency bugs:
//!
//! 1. 51 atomicity-violation bugs (from the "Learning from Mistakes"
//!    characteristics study): does the failure manifest in a thread
//!    involved in the unserializable interleaving?
//! 2. 21 order-violation bugs: does the failure manifest in the thread of
//!    the too-early operation `B`?
//! 3. 26 bugs reproduced by six prior tools: is single-threaded
//!    reexecution sufficient, and what does the reexecution region contain?
//!
//! The paper publishes only aggregates; each catalog here is a synthetic
//! per-bug record set constructed to reproduce every published aggregate
//! exactly (see DESIGN.md, substitution table).

/// Sub-pattern of an atomicity violation (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicitySubtype {
    /// Write-after-write interleaved with a read (Figure 2a).
    Waw,
    /// Read-after-write (Figure 2b).
    Raw,
    /// Read-after-read (Figure 2c).
    Rar,
    /// Write-after-read (Figure 2d).
    War,
}

/// One studied atomicity-violation bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicityBug {
    /// Catalog id.
    pub id: u32,
    /// Interleaving sub-pattern.
    pub subtype: AtomicitySubtype,
    /// Whether the failure manifests in a thread involved in the
    /// unserializable interleaving — the single-threaded-recovery
    /// precondition (Section 2.1).
    pub fails_in_involved_thread: bool,
}

/// One studied order-violation bug: operation `A` should precede `B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBug {
    /// Catalog id.
    pub id: u32,
    /// Whether the failure manifests in the thread of the too-early `B` —
    /// rolling that thread back delays `B`, recovering the failure.
    pub fails_in_thread_of_b: bool,
}

/// What the reexecution region of a reproduced bug contains (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionCharacter {
    /// Fully idempotent — recoverable by ConAir's design point.
    Idempotent,
    /// Contains I/O operations.
    ContainsIo,
    /// Contains non-idempotent memory writes but no I/O.
    NonIdempotentWrites,
}

/// One of the 26 bugs reproduced by prior tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproducedBug {
    /// Catalog id.
    pub id: u32,
    /// Which prior tool's evaluation reproduced it.
    pub source_tool: &'static str,
    /// Whether single-threaded reexecution can survive it.
    pub single_thread_recoverable: bool,
    /// Region character (meaningful when single-thread recoverable).
    pub region: Option<RegionCharacter>,
}
