//! Aggregate computations over the catalogs — the numbers Section 2 quotes.

use crate::catalogs::{atomicity_bugs, order_bugs, reproduced_bugs};
use crate::records::RegionCharacter;

/// The Section 2.1 single-threaded-recovery aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleThreadStudy {
    /// Atomicity bugs studied.
    pub atomicity_total: usize,
    /// Atomicity bugs failing in an involved thread (recoverable by
    /// single-threaded rollback).
    pub atomicity_recoverable: usize,
    /// Order bugs studied.
    pub order_total: usize,
    /// Order bugs failing in the thread of `B`.
    pub order_recoverable: usize,
}

impl SingleThreadStudy {
    /// Fraction of atomicity bugs amenable to single-threaded recovery.
    pub fn atomicity_fraction(&self) -> f64 {
        self.atomicity_recoverable as f64 / self.atomicity_total as f64
    }

    /// Fraction of order bugs amenable to single-threaded recovery.
    pub fn order_fraction(&self) -> f64 {
        self.order_recoverable as f64 / self.order_total as f64
    }
}

/// Computes the Section 2.1 aggregates from the catalogs.
pub fn single_thread_study() -> SingleThreadStudy {
    let atomicity = atomicity_bugs();
    let order = order_bugs();
    SingleThreadStudy {
        atomicity_total: atomicity.len(),
        atomicity_recoverable: atomicity
            .iter()
            .filter(|b| b.fails_in_involved_thread)
            .count(),
        order_total: order.len(),
        order_recoverable: order.iter().filter(|b| b.fails_in_thread_of_b).count(),
    }
}

/// The Section 2.2 reexecution-region aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionStudy {
    /// Bugs studied (reproduced by prior tools).
    pub total: usize,
    /// Survivable via single-threaded reexecution.
    pub single_thread: usize,
    /// Of those, regions that are fully idempotent.
    pub idempotent: usize,
    /// Regions containing I/O.
    pub with_io: usize,
    /// Regions with non-idempotent writes (no I/O).
    pub with_writes: usize,
}

/// Computes the Section 2.2 aggregates from the catalog.
pub fn region_study() -> RegionStudy {
    let bugs = reproduced_bugs();
    let mut s = RegionStudy {
        total: bugs.len(),
        single_thread: 0,
        idempotent: 0,
        with_io: 0,
        with_writes: 0,
    };
    for b in &bugs {
        if b.single_thread_recoverable {
            s.single_thread += 1;
            match b.region {
                Some(RegionCharacter::Idempotent) => s.idempotent += 1,
                Some(RegionCharacter::ContainsIo) => s.with_io += 1,
                Some(RegionCharacter::NonIdempotentWrites) => s.with_writes += 1,
                None => unreachable!("recoverable bugs carry a region"),
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Section 2.1: "About 92% of them cause failures in a thread that is
    /// involved in the unserializable interleaving" (47/51) and "about 50%
    /// of order-violation bugs lead to failures in the thread of B"
    /// (11/21).
    #[test]
    fn section_2_1_aggregates() {
        let s = single_thread_study();
        assert_eq!(s.atomicity_total, 51);
        assert_eq!(s.atomicity_recoverable, 47);
        assert!((s.atomicity_fraction() - 0.92).abs() < 0.01);
        assert_eq!(s.order_total, 21);
        assert_eq!(s.order_recoverable, 11);
        assert!((s.order_fraction() - 0.52).abs() < 0.01);
    }

    /// Section 2.2: "Among these 26 bugs, 20 can be survived through
    /// single-threaded reexecution... 16 are idempotent, 2 contain I/O
    /// operations, and 2 contain non-idempotent memory writes".
    #[test]
    fn section_2_2_aggregates() {
        let s = region_study();
        assert_eq!(s.total, 26);
        assert_eq!(s.single_thread, 20);
        assert_eq!(s.idempotent, 16);
        assert_eq!(s.with_io, 2);
        assert_eq!(s.with_writes, 2);
        assert_eq!(s.idempotent + s.with_io + s.with_writes, s.single_thread);
    }
}
