//! The ConAir code transformation (paper Sections 3.3 and 4.1).
//!
//! Given a [`HardeningPlan`], the transform rewrites the module:
//!
//! * a [`Inst::Checkpoint`] is inserted at every reexecution point — the
//!   `setjmp` + epoch-counter-increment of paper Figure 6 line 5 (one
//!   checkpoint per point even when several failure sites share it);
//! * every recoverable **assertion** / **output-oracle** site becomes a
//!   [`Inst::FailGuard`] — the transformed `if (e) {} else
//!   { while (retry++ < max) longjmp; assert_fail }` of Figure 6, with the
//!   retry loop folded into the runtime semantics of the single guard
//!   instruction (documented in DESIGN.md);
//! * every recoverable **segmentation-fault** site (pointer dereference)
//!   gets a [`Inst::PtrGuard`] inserted immediately before it — the pointer
//!   sanity check of Figure 5c;
//! * every recoverable **deadlock** site (`pthread_mutex_lock`) becomes a
//!   [`Inst::TimedLock`] — Figure 5d; unrecoverable ones are reverted to
//!   plain locks (Section 4.2);
//! * plain `Output` sites keep their instruction (no oracle to check) but
//!   still receive checkpoints, modelling the worst-case survival-mode
//!   overhead measurement of Section 5.
//!
//! Compensation bookkeeping (Section 4.1 — recording allocations and lock
//! acquisitions per reexecution epoch) is performed by the runtime whenever
//! the executing thread has an active checkpoint, so no extra instructions
//! are required at allocation/lock call sites.

use std::collections::HashMap;

use conair_analysis::HardeningPlan;
use conair_ir::{BlockId, FailureKind, FuncId, GuardKind, Inst, Loc, Module, PointId, SiteId};

/// Statistics about one transformation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Checkpoints inserted (static reexecution points).
    pub checkpoints: usize,
    /// Assert/output-oracle sites rewritten to guards.
    pub fail_guards: usize,
    /// Pointer guards inserted.
    pub ptr_guards: usize,
    /// Locks rewritten to timed locks.
    pub timed_locks: usize,
    /// Sites left untouched because the optimization proved them
    /// unrecoverable.
    pub unrecoverable_sites: usize,
}

/// The product of hardening: the transformed module plus the site/point
/// metadata the runtime reports against.
#[derive(Debug, Clone)]
pub struct HardenedModule {
    /// The transformed module (validates under
    /// [`conair_ir::validate_hardened`]).
    pub module: Module,
    /// Kind of each site, indexed by [`SiteId`] (shared with the plan).
    pub site_kinds: Vec<FailureKind>,
    /// Number of reexecution points (checkpoint instructions).
    pub num_points: usize,
    /// Transformation statistics.
    pub stats: TransformStats,
}

impl HardenedModule {
    /// The failure kind of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn site_kind(&self, site: SiteId) -> FailureKind {
        self.site_kinds[site.index()]
    }
}

/// What must happen at one original instruction index during rebuilding.
#[derive(Debug, Clone, Default)]
struct Edit {
    /// Checkpoints inserted before the instruction.
    checkpoints: Vec<PointId>,
    /// Pointer guard (site) inserted before the instruction.
    ptr_guard: Option<SiteId>,
    /// In-place rewrite of the instruction.
    rewrite: Option<Rewrite>,
}

#[derive(Debug, Clone)]
enum Rewrite {
    FailGuard { kind: GuardKind, site: SiteId },
    TimedLock { site: SiteId },
}

/// Applies `plan` to `module`, producing the hardened module.
///
/// The input module is consumed; callers keep a clone if they need the
/// original (the bench harness runs both for overhead comparison).
///
/// # Panics
///
/// Panics if the plan refers to locations that do not exist in `module`
/// (i.e. the plan was computed for a different module).
pub fn harden(mut module: Module, plan: &HardeningPlan) -> HardenedModule {
    // Collect edits keyed by function and block.
    type EditMap = HashMap<(FuncId, BlockId), HashMap<usize, Edit>>;
    let mut edits: EditMap = HashMap::new();
    fn edit_at(edits: &mut EditMap, loc: Loc) -> &mut Edit {
        edits
            .entry((loc.func, loc.block))
            .or_default()
            .entry(loc.inst)
            .or_default()
    }

    let mut stats = TransformStats::default();

    for (idx, loc) in plan.checkpoints.iter().enumerate() {
        edit_at(&mut edits, *loc)
            .checkpoints
            .push(PointId::from_index(idx));
        stats.checkpoints += 1;
    }

    for sp in &plan.sites {
        if !sp.is_recoverable() {
            stats.unrecoverable_sites += 1;
            continue;
        }
        let site = sp.site.id;
        let inst = module
            .inst_at(sp.site.loc)
            .unwrap_or_else(|| panic!("plan site {site} at {} missing", sp.site.loc));
        match inst {
            Inst::Assert { .. } => {
                edit_at(&mut edits, sp.site.loc).rewrite = Some(Rewrite::FailGuard {
                    kind: GuardKind::Assert,
                    site,
                });
                stats.fail_guards += 1;
            }
            Inst::OutputAssert { .. } => {
                edit_at(&mut edits, sp.site.loc).rewrite = Some(Rewrite::FailGuard {
                    kind: GuardKind::WrongOutput,
                    site,
                });
                stats.fail_guards += 1;
            }
            Inst::LoadPtr { .. } | Inst::StorePtr { .. } => {
                edit_at(&mut edits, sp.site.loc).ptr_guard = Some(site);
                stats.ptr_guards += 1;
            }
            Inst::Lock { .. } => {
                edit_at(&mut edits, sp.site.loc).rewrite = Some(Rewrite::TimedLock { site });
                stats.timed_locks += 1;
            }
            // Plain outputs: hardened (checkpointed) but not guarded.
            Inst::Output { .. } => {}
            other => panic!(
                "plan site {site} points at non-site instruction `{}`",
                other.mnemonic()
            ),
        }
    }

    // Rebuild each edited block in one pass over its original indices.
    for ((func_id, block_id), block_edits) in edits {
        let func = module.func_mut(func_id);
        let block = func.block_mut(block_id);
        let original = std::mem::take(&mut block.insts);
        let mut rebuilt = Vec::with_capacity(original.len() + block_edits.len() * 2);
        for (i, inst) in original.into_iter().enumerate() {
            if let Some(edit) = block_edits.get(&i) {
                for &point in &edit.checkpoints {
                    rebuilt.push(Inst::Checkpoint { point });
                }
                if let Some(site) = edit.ptr_guard {
                    let ptr = match &inst {
                        Inst::LoadPtr { ptr, .. } | Inst::StorePtr { ptr, .. } => *ptr,
                        other => panic!(
                            "ptr guard planned for non-dereference `{}`",
                            other.mnemonic()
                        ),
                    };
                    rebuilt.push(Inst::PtrGuard { ptr, site });
                }
                match (&edit.rewrite, inst) {
                    (Some(Rewrite::FailGuard { kind, site }), Inst::Assert { cond, msg })
                    | (Some(Rewrite::FailGuard { kind, site }), Inst::OutputAssert { cond, msg }) =>
                    {
                        rebuilt.push(Inst::FailGuard {
                            kind: *kind,
                            cond,
                            site: *site,
                            msg,
                        });
                    }
                    (Some(Rewrite::TimedLock { site }), Inst::Lock { lock }) => {
                        rebuilt.push(Inst::TimedLock { lock, site: *site });
                    }
                    (Some(_), other) => panic!(
                        "rewrite planned for mismatched instruction `{}`",
                        other.mnemonic()
                    ),
                    (None, other) => rebuilt.push(other),
                }
            } else {
                rebuilt.push(inst);
            }
        }
        block.insts = rebuilt;
    }

    HardenedModule {
        site_kinds: plan.sites.iter().map(|s| s.site.kind).collect(),
        num_points: plan.checkpoints.len(),
        stats,
        module,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_analysis::{analyze, AnalysisConfig};
    use conair_ir::{validate_hardened, CmpKind, FuncBuilder, ModuleBuilder, Operand};

    fn count_insts(module: &Module, pred: impl Fn(&Inst) -> bool) -> usize {
        module.iter_insts().filter(|(_, i)| pred(i)).count()
    }

    /// Figure 6: `assert(e)` becomes `checkpoint; ...; failguard`.
    #[test]
    fn assert_transformation_matches_figure_6() {
        let mut mb = ModuleBuilder::new("fig6");
        let g = mb.global("e_src", 1);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(c, "e");
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();

        let plan = analyze(&module, &AnalysisConfig::survival_defaults());
        let hardened = harden(module, &plan);
        validate_hardened(&hardened.module).expect("hardened module validates");

        let main = hardened.module.func(conair_ir::FuncId(0));
        let insts = &main.blocks[0].insts;
        assert!(
            matches!(insts[0], Inst::Checkpoint { .. }),
            "checkpoint at the entrance (the region is clean): {insts:?}"
        );
        assert!(matches!(
            insts[3],
            Inst::FailGuard {
                kind: GuardKind::Assert,
                ..
            }
        ));
        assert_eq!(hardened.stats.fail_guards, 1);
        assert_eq!(hardened.stats.checkpoints, 1);
    }

    #[test]
    fn deref_gets_ptr_guard() {
        let mut mb = ModuleBuilder::new("seg");
        let g = mb.global("p", 0);
        let mut fb = FuncBuilder::new("main", 0);
        let p = fb.load_global(g);
        let _v = fb.load_ptr(p);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let plan = analyze(&module, &AnalysisConfig::survival_defaults());
        let hardened = harden(module, &plan);
        validate_hardened(&hardened.module).expect("validates");
        assert_eq!(
            count_insts(&hardened.module, |i| matches!(i, Inst::PtrGuard { .. })),
            1
        );
        // Guard sits immediately before the dereference.
        let insts = &hardened.module.func(conair_ir::FuncId(0)).blocks[0].insts;
        let guard_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::PtrGuard { .. }))
            .unwrap();
        assert!(matches!(insts[guard_idx + 1], Inst::LoadPtr { .. }));
    }

    #[test]
    fn recoverable_lock_becomes_timed() {
        let mut mb = ModuleBuilder::new("dl");
        let l0 = mb.lock("outer");
        let l1 = mb.lock("inner");
        let mut fb = FuncBuilder::new("main", 0);
        fb.lock(l0); // unrecoverable (no enclosing acquisition)
        fb.lock(l1); // recoverable (region contains l0's acquisition)
        fb.unlock(l1);
        fb.unlock(l0);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let plan = analyze(&module, &AnalysisConfig::survival_defaults());
        let hardened = harden(module, &plan);
        validate_hardened(&hardened.module).expect("validates");
        assert_eq!(
            count_insts(&hardened.module, |i| matches!(i, Inst::TimedLock { .. })),
            1,
            "only the inner lock is rewritten"
        );
        assert_eq!(
            count_insts(&hardened.module, |i| matches!(i, Inst::Lock { .. })),
            1,
            "the unrecoverable lock stays plain (Section 4.2)"
        );
        assert_eq!(hardened.stats.unrecoverable_sites, 1);
    }

    #[test]
    fn shared_checkpoints_inserted_once() {
        // Two asserts sharing one region: a single checkpoint.
        let mut mb = ModuleBuilder::new("share");
        let g = mb.global("g", 1);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        let c1 = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c1, "a");
        let c2 = fb.cmp(CmpKind::Lt, v, 10);
        fb.assert(c2, "b");
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let plan = analyze(&module, &AnalysisConfig::survival_defaults());
        let hardened = harden(module, &plan);
        assert_eq!(
            count_insts(&hardened.module, |i| matches!(i, Inst::Checkpoint { .. })),
            1,
            "Section 3.3: just one setjmp at a common reexecution point"
        );
        assert_eq!(hardened.stats.fail_guards, 2);
    }

    #[test]
    fn interprocedural_checkpoint_lands_in_caller() {
        let mut mb = ModuleBuilder::new("moz");
        let mthd = mb.global("mThd", 0);
        let get_state = mb.declare_function("GetState", 1);
        let mut fb = FuncBuilder::new("GetState", 1);
        let v = fb.load_ptr(fb.param(0));
        fb.ret_value(v);
        mb.define_function(get_state, fb.finish());
        let mut fb = FuncBuilder::new("Get", 0);
        let ptr = fb.load_global(mthd);
        let _ = fb.call(get_state, vec![Operand::Reg(ptr)]);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let plan = analyze(&module, &AnalysisConfig::survival_defaults());
        let hardened = harden(module, &plan);
        validate_hardened(&hardened.module).expect("validates");

        let get = hardened.module.func_by_name("Get").unwrap();
        let get_fn = hardened.module.func(get);
        assert!(
            matches!(get_fn.blocks[0].insts[0], Inst::Checkpoint { .. }),
            "checkpoint in the caller: {:?}",
            get_fn.blocks[0].insts
        );
        let callee = hardened.module.func_by_name("GetState").unwrap();
        let callee_fn = hardened.module.func(callee);
        assert!(
            !callee_fn
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i, Inst::Checkpoint { .. })),
            "REintra removed from the callee"
        );
        // The dereference in the callee is still guarded.
        assert!(callee_fn
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::PtrGuard { .. })));
    }

    #[test]
    fn fix_mode_touches_single_site() {
        let mut mb = ModuleBuilder::new("fix");
        let g = mb.global("g", 1);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c, "a");
        fb.marker("bug");
        let v2 = fb.load_global(g);
        let c2 = fb.cmp(CmpKind::Gt, v2, 0);
        fb.assert(c2, "b");
        let p = fb.load_global(g);
        let _ = fb.load_ptr(p);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let plan = analyze(&module, &AnalysisConfig::fix_defaults(vec!["bug".into()]));
        let hardened = harden(module, &plan);
        validate_hardened(&hardened.module).expect("validates");
        assert_eq!(hardened.stats.fail_guards, 1);
        assert_eq!(hardened.stats.ptr_guards, 0);
        assert_eq!(
            count_insts(&hardened.module, |i| matches!(i, Inst::Assert { .. })),
            1,
            "the other assert is untouched"
        );
    }

    #[test]
    fn original_semantics_preserved_when_nothing_recoverable() {
        // A module whose only site is unrecoverable: hardening is a no-op
        // apart from nothing being inserted.
        let mut mb = ModuleBuilder::new("noop");
        let mut fb = FuncBuilder::new("main", 0);
        let k = fb.copy(1);
        fb.assert(k, "const");
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let before = module.clone();
        let plan = analyze(&module, &AnalysisConfig::survival_defaults());
        let hardened = harden(module, &plan);
        assert_eq!(hardened.module, before);
        assert_eq!(hardened.stats.checkpoints, 0);
    }
}
