//! # conair-transform
//!
//! The code-transformation component of the ConAir reproduction: consumes a
//! [`conair_analysis::HardeningPlan`] and rewrites a `conair-ir` module so
//! the runtime can perform single-threaded idempotent rollback recovery
//! (paper Sections 3.3 and 4.1).
//!
//! ## Example
//!
//! ```rust
//! use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder, validate_hardened};
//! use conair_analysis::{analyze, AnalysisConfig};
//! use conair_transform::harden;
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 1);
//! let mut fb = FuncBuilder::new("main", 0);
//! let v = fb.load_global(flag);
//! let ok = fb.cmp(CmpKind::Ne, v, 0);
//! fb.assert(ok, "flag must be set");
//! fb.ret();
//! mb.function(fb.finish());
//! let module = mb.finish();
//!
//! let plan = analyze(&module, &AnalysisConfig::survival_defaults());
//! let hardened = harden(module, &plan);
//! assert!(validate_hardened(&hardened.module).is_ok());
//! assert_eq!(hardened.num_points, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod harden;

pub use harden::{harden, HardenedModule, TransformStats};
