//! # conair-cli
//!
//! A command-line driver for the ConAir pipeline over textual IR files:
//!
//! ```text
//! conair-cli print   <file.cir>
//! conair-cli analyze <file.cir> [--fix <marker>]... [--no-optimize] [--no-interproc]
//! conair-cli harden  <file.cir> [--fix <marker>]... [-o <out.cir>]
//! conair-cli run     <file.cir> --threads <f1,f2,...> [--seed <n>] [--steps <n>]
//! ```
//!
//! The library half holds the (easily testable) command implementations;
//! the binary is a thin argument parser around them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

use conair::{Conair, ConairConfig, Mode};
use conair_ir::{parse_module, validate, validate_hardened, FailureKind, Module};
use conair_runtime::{run_once, MachineConfig, Program, RunOutcome};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Parse, validate and pretty-print.
    Print {
        /// Input path.
        input: String,
    },
    /// Run the static analysis and report sites/points.
    Analyze {
        /// Input path.
        input: String,
        /// Fix-mode markers (empty = survival mode).
        fix_markers: Vec<String>,
        /// Disable the Section-4.2 optimization.
        no_optimize: bool,
        /// Disable Section-4.3 inter-procedural promotion.
        no_interproc: bool,
    },
    /// Analyze + transform; print or write the hardened module.
    Harden {
        /// Input path.
        input: String,
        /// Fix-mode markers (empty = survival mode).
        fix_markers: Vec<String>,
        /// Output path (stdout when absent).
        output: Option<String>,
    },
    /// Execute the program.
    Run {
        /// Input path.
        input: String,
        /// Thread entry function names.
        threads: Vec<String>,
        /// Scheduler seed.
        seed: u64,
        /// Step limit.
        steps: u64,
    },
}

/// Parses `argv[1..]`.
///
/// # Errors
///
/// Returns a usage error on unknown commands or malformed flags.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let cmd = it
        .next()
        .ok_or_else(|| CliError::new(USAGE))?
        .as_str();
    let mut input: Option<String> = None;
    let mut fix_markers = Vec::new();
    let mut no_optimize = false;
    let mut no_interproc = false;
    let mut output = None;
    let mut threads = Vec::new();
    let mut seed = 0u64;
    let mut steps = 50_000_000u64;

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fix" => fix_markers.push(
                it.next()
                    .ok_or_else(|| CliError::new("--fix needs a marker name"))?
                    .clone(),
            ),
            "--no-optimize" => no_optimize = true,
            "--no-interproc" => no_interproc = true,
            "-o" | "--output" => {
                output = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("-o needs a path"))?
                        .clone(),
                )
            }
            "--threads" => {
                let list = it
                    .next()
                    .ok_or_else(|| CliError::new("--threads needs a comma-separated list"))?;
                threads = list.split(',').map(str::to_owned).collect();
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--seed needs a number"))?
            }
            "--steps" => {
                steps = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--steps needs a number"))?
            }
            other if other.starts_with('-') => {
                return Err(CliError::new(format!("unknown flag `{other}`\n{USAGE}")))
            }
            other => {
                if input.is_some() {
                    return Err(CliError::new(format!("unexpected argument `{other}`")));
                }
                input = Some(other.to_owned());
            }
        }
    }
    let input = input.ok_or_else(|| CliError::new(format!("missing input file\n{USAGE}")))?;
    Ok(match cmd {
        "print" => Command::Print { input },
        "analyze" => Command::Analyze {
            input,
            fix_markers,
            no_optimize,
            no_interproc,
        },
        "harden" => Command::Harden {
            input,
            fix_markers,
            output,
        },
        "run" => Command::Run {
            input,
            threads,
            seed,
            steps,
        },
        other => return Err(CliError::new(format!("unknown command `{other}`\n{USAGE}"))),
    })
}

/// Usage text.
pub const USAGE: &str = "usage: conair-cli <print|analyze|harden|run> <file.cir> [options]
  print   <file.cir>                     parse, validate, pretty-print
  analyze <file.cir> [--fix M]... [--no-optimize] [--no-interproc]
  harden  <file.cir> [--fix M]... [-o out.cir]
  run     <file.cir> --threads f1,f2 [--seed N] [--steps N]";

fn load(text: &str) -> Result<Module, CliError> {
    let module =
        parse_module(text).map_err(|e| CliError::new(format!("parse error: {e}")))?;
    if let Err(errs) = validate(&module) {
        // A hardened module is also acceptable input.
        if validate_hardened(&module).is_err() {
            let mut msg = String::from("validation failed:\n");
            for e in errs.iter().take(10) {
                let _ = writeln!(msg, "  {e}");
            }
            return Err(CliError::new(msg));
        }
    }
    Ok(module)
}

fn pipeline(fix_markers: &[String], no_optimize: bool, no_interproc: bool) -> Conair {
    Conair::with_config(ConairConfig {
        mode: if fix_markers.is_empty() {
            Mode::Survival
        } else {
            Mode::Fix(fix_markers.to_vec())
        },
        optimize: !no_optimize,
        interproc_depth: if no_interproc { None } else { Some(3) },
        ..ConairConfig::default()
    })
}

/// Executes `print` on module text, returning the report.
pub fn cmd_print(text: &str) -> Result<String, CliError> {
    let module = load(text)?;
    let mut out = module.to_string();
    let _ = writeln!(
        out,
        "; {} functions, {} globals, {} locks, {} instructions",
        module.functions.len(),
        module.globals.len(),
        module.locks.len(),
        module.num_insts()
    );
    Ok(out)
}

/// Executes `analyze` on module text, returning the report.
pub fn cmd_analyze(
    text: &str,
    fix_markers: &[String],
    no_optimize: bool,
    no_interproc: bool,
) -> Result<String, CliError> {
    let module = load(text)?;
    let plan = pipeline(fix_markers, no_optimize, no_interproc).analyze(&module);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mode: {}",
        if fix_markers.is_empty() { "survival" } else { "fix" }
    );
    for kind in FailureKind::ALL {
        let n = plan.stats.sites_by_kind.get(&kind).copied().unwrap_or(0);
        let _ = writeln!(out, "{kind} sites: {n}");
    }
    let _ = writeln!(out, "recoverable sites: {}", plan.stats.recoverable_sites);
    let _ = writeln!(
        out,
        "removed by optimization: {} non-deadlock, {} deadlock",
        plan.stats.removed_non_deadlock_sites, plan.stats.removed_deadlock_sites
    );
    let _ = writeln!(out, "inter-procedural promotions: {}", plan.stats.promoted_sites);
    let _ = writeln!(out, "reexecution points: {}", plan.stats.static_points);
    for (i, loc) in plan.checkpoints.iter().enumerate() {
        let func = &module.func(loc.func).name;
        let _ = writeln!(out, "  pt{i}: before {func} @ {}:{}", loc.block, loc.inst);
    }
    Ok(out)
}

/// Executes `harden` on module text, returning the hardened module text.
pub fn cmd_harden(text: &str, fix_markers: &[String]) -> Result<String, CliError> {
    let module = load(text)?;
    let pipeline = pipeline(fix_markers, false, false);
    let plan = pipeline.analyze(&module);
    let hardened = conair_transform::harden(module, &plan);
    Ok(hardened.module.to_string())
}

/// Executes `run` on module text with the named thread entries.
pub fn cmd_run(
    text: &str,
    threads: &[String],
    seed: u64,
    steps: u64,
) -> Result<String, CliError> {
    let module = load(text)?;
    if threads.is_empty() {
        return Err(CliError::new("run: --threads is required"));
    }
    for t in threads {
        let func = module
            .func_by_name(t)
            .ok_or_else(|| CliError::new(format!("run: unknown thread entry `{t}`")))?;
        if module.func(func).num_params != 0 {
            return Err(CliError::new(format!(
                "run: thread entry `{t}` takes parameters; only no-arg entries are runnable"
            )));
        }
    }
    let names: Vec<&str> = threads.iter().map(String::as_str).collect();
    let program = Program::from_entry_names(module, &names);
    let config = MachineConfig {
        step_limit: steps,
        trace_depth: 16,
        ..MachineConfig::default()
    };
    let r = run_once(&program, config, seed);
    let mut out = String::new();
    match &r.outcome {
        RunOutcome::Completed => {
            let _ = writeln!(out, "completed in {} steps", r.stats.steps);
        }
        RunOutcome::Failed(f) => {
            let _ = writeln!(
                out,
                "FAILED ({}) in thread {} at step {}: {}",
                f.kind, f.thread, f.step, f.msg
            );
            for (step, loc) in &f.trace {
                let func = &program.module.func(loc.func).name;
                let _ = writeln!(out, "  step {step}: {func} @ {}:{}", loc.block, loc.inst);
            }
        }
        RunOutcome::Hang { blocked_on_locks } => {
            let _ = writeln!(out, "HANG: {blocked_on_locks} threads blocked on locks");
            if let Some(cycle) = conair_runtime::find_wait_cycle(&r.stats.wait_edges) {
                let _ = writeln!(out, "wait cycle: {cycle}");
            }
        }
        RunOutcome::StepLimit => {
            let _ = writeln!(out, "step limit ({steps}) reached");
        }
    }
    for o in &r.outputs {
        let _ = writeln!(out, "output [{}] {} = {}", o.thread, o.label, o.value);
    }
    if r.stats.rollbacks > 0 {
        let _ = writeln!(
            out,
            "recovery: {} rollbacks, {} retries",
            r.stats.rollbacks,
            r.stats.total_retries()
        );
    }
    Ok(out)
}

/// Dispatches a parsed command, reading/writing files as needed.
///
/// # Errors
///
/// Propagates I/O, parse and execution errors.
pub fn execute(command: &Command) -> Result<String, CliError> {
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("cannot read `{path}`: {e}")))
    };
    match command {
        Command::Print { input } => cmd_print(&read(input)?),
        Command::Analyze {
            input,
            fix_markers,
            no_optimize,
            no_interproc,
        } => cmd_analyze(&read(input)?, fix_markers, *no_optimize, *no_interproc),
        Command::Harden {
            input,
            fix_markers,
            output,
        } => {
            let hardened = cmd_harden(&read(input)?, fix_markers)?;
            match output {
                Some(path) => {
                    std::fs::write(path, &hardened)
                        .map_err(|e| CliError::new(format!("cannot write `{path}`: {e}")))?;
                    Ok(format!("wrote hardened module to {path}\n"))
                }
                None => Ok(hardened),
            }
        }
        Command::Run {
            input,
            threads,
            seed,
            steps,
        } => cmd_run(&read(input)?, threads, *seed, *steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "module demo {
global flag [1 x i64] = 0
fn reader(params=0, regs=2, locals=0) {
bb0:
    %r0 = ldg @g0
    %r1 = cmp.ne %r0, 0
    assert %r1, \"flag set\"
    output \"seen\", %r0
    ret
}
fn writer(params=0, regs=0, locals=0) {
bb0:
    stg @g0, 5
    ret
}
}";

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_commands() {
        assert_eq!(
            parse_args(&args(&["print", "a.cir"])).unwrap(),
            Command::Print { input: "a.cir".into() }
        );
        assert_eq!(
            parse_args(&args(&["analyze", "a.cir", "--fix", "m", "--no-optimize"])).unwrap(),
            Command::Analyze {
                input: "a.cir".into(),
                fix_markers: vec!["m".into()],
                no_optimize: true,
                no_interproc: false,
            }
        );
        assert_eq!(
            parse_args(&args(&["harden", "a.cir", "-o", "b.cir"])).unwrap(),
            Command::Harden {
                input: "a.cir".into(),
                fix_markers: vec![],
                output: Some("b.cir".into()),
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run", "a.cir", "--threads", "x,y", "--seed", "7", "--steps", "100"
            ]))
            .unwrap(),
            Command::Run {
                input: "a.cir".into(),
                threads: vec!["x".into(), "y".into()],
                seed: 7,
                steps: 100,
            }
        );
    }

    #[test]
    fn parse_errors_are_usable() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["frobnicate", "a.cir"])).is_err());
        assert!(parse_args(&args(&["print"])).is_err());
        assert!(parse_args(&args(&["analyze", "a.cir", "--fix"])).is_err());
        assert!(parse_args(&args(&["run", "a", "b"])).is_err());
        assert!(parse_args(&args(&["run", "a.cir", "--bogus"])).is_err());
    }

    #[test]
    fn print_roundtrips_demo() {
        let out = cmd_print(DEMO).unwrap();
        assert!(out.contains("fn reader"));
        assert!(out.contains("2 functions"));
        assert!(cmd_print("not a module").is_err());
    }

    #[test]
    fn analyze_reports_sites_and_points() {
        let out = cmd_analyze(DEMO, &[], false, false).unwrap();
        assert!(out.contains("assertion-violation sites: 1"), "{out}");
        assert!(out.contains("wrong-output sites: 1"), "{out}");
        assert!(out.contains("reexecution points: "), "{out}");
        assert!(out.contains("mode: survival"));
    }

    #[test]
    fn harden_emits_parseable_hardened_module() {
        let out = cmd_harden(DEMO, &[]).unwrap();
        assert!(out.contains("checkpoint"), "{out}");
        assert!(out.contains("failguard.assert"), "{out}");
        // The hardened output is itself valid CLI input.
        let reprint = cmd_print(&out).unwrap();
        assert!(reprint.contains("checkpoint"));
    }

    #[test]
    fn run_executes_and_reports_recovery() {
        // The hardened demo recovers the order violation under some seeds;
        // the unhardened one may fail. Run the hardened text.
        let hardened = cmd_harden(DEMO, &[]).unwrap();
        let out = cmd_run(&hardened, &["reader".into(), "writer".into()], 3, 100_000).unwrap();
        assert!(out.contains("completed"), "{out}");
        assert!(out.contains("seen = 5"), "{out}");
    }

    #[test]
    fn run_rejects_bad_threads() {
        assert!(cmd_run(DEMO, &[], 0, 1000).is_err());
        assert!(cmd_run(DEMO, &["ghost".into()], 0, 1000).is_err());
    }
}
