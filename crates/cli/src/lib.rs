//! # conair-cli
//!
//! A command-line driver for the ConAir pipeline over textual IR files:
//!
//! ```text
//! conair-cli print   <file.cir>
//! conair-cli analyze <file.cir> [--fix <marker>]... [--no-optimize] [--no-interproc]
//! conair-cli harden  <file.cir> [--fix <marker>]... [-o <out.cir>]
//! conair-cli run     <file.cir> [--harden] [--threads <f1,f2,...>] [--seed <n>]
//!                    [--steps <n>] [--trace <out.jsonl>] [--trace-depth <n>]
//!                    [--trials <n>] [--jobs <n>] [--scheduler <name>]
//!                    [--replay <trace.json>] [--record <trace.json>]
//! conair-cli explore <file.cir> [--scheduler pct|bounded] [--budget <n>]
//!                    [--preemptions <k>] [--depth <d>] [--points <mask>]
//!                    [--jobs <n>] [--minimize] [-o <trace.json>]
//!                    [--progress[=<ms>]] [--progress-out <p.jsonl>]
//!                    [--metrics-out <m.prom>]
//! conair-cli report  <trace.jsonl | trace.json | report.json> [--limit <n>]
//!                    [--chrome <out.json>]
//! conair-cli stats   <progress.jsonl>
//! ```
//!
//! `run --trace` records the structured [`conair_runtime::TraceEvent`]
//! stream of the run as JSON Lines; `report` renders such a trace as a
//! human-readable timeline plus a metrics summary, and can convert it to
//! Chrome trace-event JSON (`chrome://tracing` / Perfetto) via `--chrome`.
//!
//! `explore` searches the schedule space (PCT or bounded-preemption) for a
//! failing interleaving and writes it as a decision trace, optionally
//! delta-debugged by `--minimize`; `run --replay` re-executes a recorded
//! trace bit-identically, and `run --record` captures any run's schedule.
//! `report` also renders decision traces and `--report-out` JSON.
//!
//! The exploration observatory watches a search without changing it:
//! `explore --progress` prints a live stderr ticker, `--progress-out`
//! records the sampled [`conair_runtime::TraceEvent::ExploreProgress`] /
//! [`conair_runtime::TraceEvent::ExploreWave`] stream as JSONL (rendered
//! later by `stats` or `report --chrome`), and `--metrics-out` dumps the
//! final [`conair_runtime::MetricsRegistry`] in Prometheus text format.
//! Reports stay bit-identical (modulo wall-clock fields) whether or not
//! any of the three flags are set.
//!
//! The library half holds the (easily testable) command implementations;
//! the binary is a thin argument parser around them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

use conair::{Conair, ConairConfig, Mode};
use conair_ir::{parse_module, validate, validate_hardened, FailureKind, Module};
use conair_runtime::{
    explore_observed, from_jsonl, minimize, run_replay, run_trials_parallel, run_with,
    summarize_events, to_chrome_trace, to_jsonl, DecisionTrace, EventBuffer, ExploreConfig,
    ExploreObserver, ExploreReport, ExploreStrategy, MachineConfig, MetricsRegistry, PctConfig,
    PctScheduler, PointMask, Program, RoundRobin, RunOutcome, RunResult, ScheduleScript, Scheduler,
    SeededRandom, TraceEvent, TraceSink,
};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Default `--trace-depth`: the failing thread's last 16 executed
/// locations are attached to failure reports. The runtime's own default
/// ([`MachineConfig::trace_depth`]) is 0 — location tracing off — so a
/// bare `FailureRecord.trace` stays empty there; the CLI turns it on so
/// `run` failures are diagnosable out of the box.
pub const DEFAULT_TRACE_DEPTH: usize = 16;

/// Default number of timeline lines `report` prints before eliding.
pub const DEFAULT_REPORT_LIMIT: usize = 200;

/// Default milliseconds between `--progress` ticker lines (bare
/// `--progress`; `--progress=<ms>` overrides, 0 samples every wave).
pub const DEFAULT_PROGRESS_INTERVAL_MS: u64 = 500;

/// Options of the `run` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Thread entry function names. Empty = every zero-parameter function
    /// of the module, in module order.
    pub threads: Vec<String>,
    /// Scheduler seed.
    pub seed: u64,
    /// Step limit.
    pub steps: u64,
    /// Harden the module (analysis + transform) before running.
    pub harden: bool,
    /// Fix-mode markers for `--harden` (empty = survival mode).
    pub fix_markers: Vec<String>,
    /// Write a JSONL event trace to this path.
    pub trace: Option<String>,
    /// Per-thread location ring-buffer depth for failure reports.
    pub trace_depth: usize,
    /// Seeded trials to run (seeds `seed..seed+trials`). `1` = the classic
    /// single run; more prints an aggregate summary instead.
    pub trials: usize,
    /// Worker threads for multi-trial runs. Results merge in seed order,
    /// so the summary is identical for any job count.
    pub jobs: usize,
    /// Scheduler: `random` (default, the historical behavior),
    /// `round-robin`, or `pct`.
    pub scheduler: String,
    /// Replay a recorded decision trace (path to a `trace.json` as written
    /// by `explore --out` or `run --record`).
    pub replay: Option<String>,
    /// Record the run's decision trace to this path.
    pub record: Option<String>,
    /// Route execution through the legacy per-step `&Inst` interpreter
    /// walk (requires the `dense-oracle` feature) — CI diffs its output
    /// against the decoded interpreter's.
    pub dense_oracle: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: Vec::new(),
            seed: 0,
            steps: 50_000_000,
            harden: false,
            fix_markers: Vec::new(),
            trace: None,
            trace_depth: DEFAULT_TRACE_DEPTH,
            trials: 1,
            jobs: 1,
            scheduler: "random".into(),
            replay: None,
            record: None,
            dense_oracle: false,
        }
    }
}

/// Options of the `explore` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Thread entry function names (empty = every zero-parameter function).
    pub threads: Vec<String>,
    /// Search strategy: `pct` or `bounded`.
    pub scheduler: String,
    /// Schedules to execute at most.
    pub budget: usize,
    /// Preemption bound for `bounded`.
    pub preemptions: usize,
    /// Priority-change points for `pct`.
    pub depth: usize,
    /// Decision points: `sync`, `shared` or `all`.
    pub points: String,
    /// Worker threads (results are identical for any job count).
    pub jobs: usize,
    /// Base seed for `pct`.
    pub seed: u64,
    /// Per-schedule step limit.
    pub steps: u64,
    /// Harden the module before exploring.
    pub harden: bool,
    /// Fix-mode markers for `--harden`.
    pub fix_markers: Vec<String>,
    /// Delta-debug the first failing trace before writing it.
    pub minimize: bool,
    /// Keep searching after the first failure (count them all).
    pub keep_going: bool,
    /// Write the first failing (possibly minimized) trace here.
    pub out: Option<String>,
    /// Write the exploration report as JSON here.
    pub report_out: Option<String>,
    /// Retained snapshots in the prefix-sharing tree (0 disables it;
    /// reports are bit-identical at any value).
    pub snapshot_budget: usize,
    /// Pin the wave width instead of the adaptive ramp.
    pub wave: Option<usize>,
    /// Print a live progress ticker to stderr, sampled at most every this
    /// many milliseconds (0 = every wave).
    pub progress: Option<u64>,
    /// Record the sampled progress/wave event stream as JSONL here.
    pub progress_out: Option<String>,
    /// Write the final metrics registry in Prometheus text format here.
    pub metrics_out: Option<String>,
    /// Route every schedule through the legacy per-step `&Inst`
    /// interpreter walk (requires the `dense-oracle` feature).
    pub dense_oracle: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            threads: Vec::new(),
            scheduler: "pct".into(),
            budget: 256,
            preemptions: 2,
            depth: 3,
            points: "sync".into(),
            jobs: 1,
            seed: 1,
            steps: 50_000_000,
            harden: false,
            fix_markers: Vec::new(),
            minimize: false,
            keep_going: false,
            out: None,
            report_out: None,
            snapshot_budget: 256,
            wave: None,
            progress: None,
            progress_out: None,
            metrics_out: None,
            dense_oracle: false,
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Parse, validate and pretty-print.
    Print {
        /// Input path.
        input: String,
    },
    /// Run the static analysis and report sites/points.
    Analyze {
        /// Input path.
        input: String,
        /// Fix-mode markers (empty = survival mode).
        fix_markers: Vec<String>,
        /// Disable the Section-4.2 optimization.
        no_optimize: bool,
        /// Disable Section-4.3 inter-procedural promotion.
        no_interproc: bool,
    },
    /// Analyze + transform; print or write the hardened module.
    Harden {
        /// Input path.
        input: String,
        /// Fix-mode markers (empty = survival mode).
        fix_markers: Vec<String>,
        /// Output path (stdout when absent).
        output: Option<String>,
    },
    /// Execute the program.
    Run {
        /// Input path.
        input: String,
        /// Execution options.
        opts: RunOptions,
    },
    /// Search schedules for a failing interleaving.
    Explore {
        /// Input path.
        input: String,
        /// Exploration options.
        opts: ExploreOptions,
    },
    /// Render a JSONL trace, an exploration report or a decision trace.
    Report {
        /// Trace path (JSONL from `run --trace`, JSON from `explore
        /// --report-out` or a recorded decision trace).
        input: String,
        /// Timeline lines to print (0 = all).
        limit: usize,
        /// Also write Chrome trace-event JSON here.
        chrome: Option<String>,
    },
    /// Summarize a recorded exploration progress stream.
    Stats {
        /// Progress stream path (JSONL from `explore --progress-out`).
        input: String,
    },
}

/// Parses `argv[1..]`.
///
/// # Errors
///
/// Returns a usage error on unknown commands or malformed flags.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| CliError::new(USAGE))?.as_str();
    let mut input: Option<String> = None;
    let mut fix_markers = Vec::new();
    let mut no_optimize = false;
    let mut no_interproc = false;
    let mut output = None;
    let mut threads = Vec::new();
    let mut seed = 0u64;
    let mut steps = 50_000_000u64;
    let mut harden = false;
    let mut trace: Option<String> = None;
    let mut trace_depth = DEFAULT_TRACE_DEPTH;
    let mut trials = 1usize;
    let mut jobs = 1usize;
    let mut limit = DEFAULT_REPORT_LIMIT;
    let mut chrome: Option<String> = None;
    let mut scheduler: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut record: Option<String> = None;
    let mut budget = 256usize;
    let mut preemptions = 2usize;
    let mut depth = 3usize;
    let mut points: Option<String> = None;
    let mut seed_given = false;
    let mut minimize = false;
    let mut keep_going = false;
    let mut report_out: Option<String> = None;
    let mut snapshot_budget = 256usize;
    let mut wave: Option<usize> = None;
    let mut progress: Option<u64> = None;
    let mut progress_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut dense_oracle = false;

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fix" => fix_markers.push(
                it.next()
                    .ok_or_else(|| CliError::new("--fix needs a marker name"))?
                    .clone(),
            ),
            "--no-optimize" => no_optimize = true,
            "--no-interproc" => no_interproc = true,
            "--harden" => harden = true,
            "-o" | "--output" => {
                output = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("-o needs a path"))?
                        .clone(),
                )
            }
            "--threads" => {
                let list = it
                    .next()
                    .ok_or_else(|| CliError::new("--threads needs a comma-separated list"))?;
                threads = list.split(',').map(str::to_owned).collect();
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--seed needs a number"))?;
                seed_given = true;
            }
            "--steps" => {
                steps = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--steps needs a number"))?
            }
            "--trace" => {
                trace = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--trace needs a path"))?
                        .clone(),
                )
            }
            "--trace-depth" => {
                trace_depth = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--trace-depth needs a number"))?
            }
            "--trials" => {
                trials = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::new("--trials needs a number >= 1"))?
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::new("--jobs needs a number >= 1"))?
            }
            "--limit" => {
                limit = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--limit needs a number"))?
            }
            "--chrome" => {
                chrome = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--chrome needs a path"))?
                        .clone(),
                )
            }
            "--scheduler" => {
                scheduler = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--scheduler needs a name"))?
                        .clone(),
                )
            }
            "--replay" => {
                replay = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--replay needs a path"))?
                        .clone(),
                )
            }
            "--record" => {
                record = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--record needs a path"))?
                        .clone(),
                )
            }
            "--budget" => {
                budget = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::new("--budget needs a number >= 1"))?
            }
            "--preemptions" => {
                preemptions = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--preemptions needs a number"))?
            }
            "--depth" => {
                depth = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::new("--depth needs a number >= 1"))?
            }
            "--points" => {
                points = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--points needs sync|shared|all"))?
                        .clone(),
                )
            }
            "--minimize" => minimize = true,
            "--keep-going" => keep_going = true,
            "--dense-oracle" => {
                if !cfg!(feature = "dense-oracle") {
                    return Err(CliError::new(
                        "--dense-oracle requires building with `--features dense-oracle`",
                    ));
                }
                dense_oracle = true;
            }
            "--snapshot-budget" => {
                snapshot_budget = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::new("--snapshot-budget needs a number (0 disables)"))?
            }
            "--wave" => {
                wave = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| CliError::new("--wave needs a number >= 1"))?,
                )
            }
            "--report-out" => {
                report_out = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--report-out needs a path"))?
                        .clone(),
                )
            }
            "--progress" => progress = Some(DEFAULT_PROGRESS_INTERVAL_MS),
            "--progress-out" => {
                progress_out = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--progress-out needs a path"))?
                        .clone(),
                )
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--metrics-out needs a path"))?
                        .clone(),
                )
            }
            other if other.starts_with("--progress=") => {
                progress =
                    Some(other["--progress=".len()..].parse().map_err(|_| {
                        CliError::new("--progress=<ms> needs a number of milliseconds")
                    })?)
            }
            other if other.starts_with('-') => {
                return Err(CliError::new(format!("unknown flag `{other}`\n{USAGE}")))
            }
            other => {
                if input.is_some() {
                    return Err(CliError::new(format!("unexpected argument `{other}`")));
                }
                input = Some(other.to_owned());
            }
        }
    }
    let input = input.ok_or_else(|| CliError::new(format!("missing input file\n{USAGE}")))?;
    Ok(match cmd {
        "print" => Command::Print { input },
        "analyze" => Command::Analyze {
            input,
            fix_markers,
            no_optimize,
            no_interproc,
        },
        "harden" => Command::Harden {
            input,
            fix_markers,
            output,
        },
        "run" => Command::Run {
            input,
            opts: RunOptions {
                threads,
                seed,
                steps,
                harden,
                fix_markers,
                trace,
                trace_depth,
                trials,
                jobs,
                scheduler: scheduler.unwrap_or_else(|| "random".into()),
                replay,
                record,
                dense_oracle,
            },
        },
        "explore" => Command::Explore {
            input,
            opts: ExploreOptions {
                threads,
                scheduler: scheduler.unwrap_or_else(|| "pct".into()),
                budget,
                preemptions,
                depth,
                points: points.unwrap_or_else(|| "sync".into()),
                jobs,
                seed: if seed_given { seed } else { 1 },
                steps,
                harden,
                fix_markers,
                minimize,
                keep_going,
                out: output,
                report_out,
                snapshot_budget,
                wave,
                progress,
                progress_out,
                metrics_out,
                dense_oracle,
            },
        },
        "report" => Command::Report {
            input,
            limit,
            chrome,
        },
        "stats" => Command::Stats { input },
        other => return Err(CliError::new(format!("unknown command `{other}`\n{USAGE}"))),
    })
}

/// Usage text.
pub const USAGE: &str =
    "usage: conair-cli <print|analyze|harden|run|explore|report|stats> <file> [options]
  print   <file.cir>                     parse, validate, pretty-print
  analyze <file.cir> [--fix M]... [--no-optimize] [--no-interproc]
  harden  <file.cir> [--fix M]... [-o out.cir]
  run     <file.cir> [--harden [--fix M]...] [--threads f1,f2] [--seed N]
          [--steps N] [--trace out.jsonl] [--trace-depth N]
          [--trials N [--jobs N]] [--scheduler random|round-robin|pct]
          [--replay trace.json] [--record trace.json] [--dense-oracle]
          --threads defaults to every zero-parameter function;
          --trace-depth defaults to 16 (0 disables failure location traces);
          --trials N > 1 runs seeds seed..seed+N and prints an aggregate
          summary; --jobs N spreads the trials over N worker threads
          (the summary is identical for any job count);
          --replay re-executes a recorded decision trace bit-identically;
          --record writes the run's decision trace for later --replay
  explore <file.cir> [--harden [--fix M]...] [--threads f1,f2]
          [--scheduler pct|bounded] [--budget N] [--preemptions K]
          [--depth D] [--points sync|shared|all] [--seed N] [--jobs N]
          [--minimize] [--keep-going] [-o trace.json]
          [--report-out report.json] [--snapshot-budget N] [--wave N]
          [--progress[=MS]] [--progress-out p.jsonl] [--metrics-out m.prom]
          [--dense-oracle]
          searches schedules for a failing interleaving; the first failing
          trace is written to -o (delta-debugged first with --minimize);
          --keep-going exhausts the budget and counts every failure;
          --snapshot-budget bounds the prefix-sharing snapshot tree the
          bounded search resumes schedules from (0 disables it; reports
          are bit-identical at any value); --wave pins the fan-out wave
          width instead of the adaptive 16..256 ramp;
          --progress prints a live stderr ticker (sampled every MS ms,
          default 500, 0 = every wave); --progress-out records the
          progress/wave event stream as JSONL for `stats` or `report`;
          --metrics-out writes the final metrics registry in Prometheus
          text format; none of the three changes the search or the report;
          --dense-oracle (run and explore; needs the dense-oracle build
          feature) executes on the legacy per-step instruction walk — the
          output is bit-identical to the decoded interpreter's (CI diffs
          the two)
  report  <trace.jsonl|report.json|trace.json> [--limit N]
          [--chrome out.json]
  stats   <progress.jsonl>               summarize a recorded progress
          stream: schedules/throughput, failures, snapshot reuse and the
          self-profiling phase breakdown";

fn load(text: &str) -> Result<Module, CliError> {
    let module = parse_module(text).map_err(|e| CliError::new(format!("parse error: {e}")))?;
    if let Err(errs) = validate(&module) {
        // A hardened module is also acceptable input.
        if validate_hardened(&module).is_err() {
            let mut msg = String::from("validation failed:\n");
            for e in errs.iter().take(10) {
                let _ = writeln!(msg, "  {e}");
            }
            return Err(CliError::new(msg));
        }
    }
    Ok(module)
}

fn pipeline(fix_markers: &[String], no_optimize: bool, no_interproc: bool) -> Conair {
    Conair::with_config(ConairConfig {
        mode: if fix_markers.is_empty() {
            Mode::Survival
        } else {
            Mode::Fix(fix_markers.to_vec())
        },
        optimize: !no_optimize,
        interproc_depth: if no_interproc { None } else { Some(3) },
        ..ConairConfig::default()
    })
}

/// Executes `print` on module text, returning the report.
pub fn cmd_print(text: &str) -> Result<String, CliError> {
    let module = load(text)?;
    let mut out = module.to_string();
    let _ = writeln!(
        out,
        "; {} functions, {} globals, {} locks, {} instructions",
        module.functions.len(),
        module.globals.len(),
        module.locks.len(),
        module.num_insts()
    );
    Ok(out)
}

/// Executes `analyze` on module text, returning the report.
pub fn cmd_analyze(
    text: &str,
    fix_markers: &[String],
    no_optimize: bool,
    no_interproc: bool,
) -> Result<String, CliError> {
    let module = load(text)?;
    let plan = pipeline(fix_markers, no_optimize, no_interproc).analyze(&module);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mode: {}",
        if fix_markers.is_empty() {
            "survival"
        } else {
            "fix"
        }
    );
    for kind in FailureKind::ALL {
        let n = plan.stats.sites_by_kind.get(&kind).copied().unwrap_or(0);
        let _ = writeln!(out, "{kind} sites: {n}");
    }
    let _ = writeln!(out, "recoverable sites: {}", plan.stats.recoverable_sites);
    let _ = writeln!(
        out,
        "removed by optimization: {} non-deadlock, {} deadlock",
        plan.stats.removed_non_deadlock_sites, plan.stats.removed_deadlock_sites
    );
    let _ = writeln!(
        out,
        "inter-procedural promotions: {}",
        plan.stats.promoted_sites
    );
    let _ = writeln!(out, "reexecution points: {}", plan.stats.static_points);
    for (i, loc) in plan.checkpoints.iter().enumerate() {
        let func = &module.func(loc.func).name;
        let _ = writeln!(out, "  pt{i}: before {func} @ {}:{}", loc.block, loc.inst);
    }
    Ok(out)
}

/// Executes `harden` on module text, returning the hardened module text.
pub fn cmd_harden(text: &str, fix_markers: &[String]) -> Result<String, CliError> {
    let module = load(text)?;
    let pipeline = pipeline(fix_markers, false, false);
    let plan = pipeline.analyze(&module);
    let hardened = conair_transform::harden(module, &plan);
    Ok(hardened.module.to_string())
}

/// Resolves the thread entry names for `run`: the requested names, or
/// every zero-parameter function in module order when none were given.
fn resolve_entries(module: &Module, requested: &[String]) -> Result<Vec<String>, CliError> {
    if requested.is_empty() {
        let defaults: Vec<String> = module
            .functions
            .iter()
            .filter(|f| f.num_params == 0)
            .map(|f| f.name.clone())
            .collect();
        if defaults.is_empty() {
            return Err(CliError::new(
                "run: module has no zero-parameter functions; pass --threads",
            ));
        }
        return Ok(defaults);
    }
    for t in requested {
        let func = module
            .func_by_name(t)
            .ok_or_else(|| CliError::new(format!("run: unknown thread entry `{t}`")))?;
        if module.func(func).num_params != 0 {
            return Err(CliError::new(format!(
                "run: thread entry `{t}` takes parameters; only no-arg entries are runnable"
            )));
        }
    }
    Ok(requested.to_vec())
}

/// Checks the event-count identities between a trace and the run's stats
/// (see the invariants in [`conair_runtime`]'s trace module docs).
fn verify_trace_consistency(events: &[TraceEvent], r: &RunResult) -> Result<(), CliError> {
    let count = |kind: &str| events.iter().filter(|e| e.kind_name() == kind).count() as u64;
    let recovered_sites = r
        .stats
        .site_recovery
        .values()
        .filter(|s| s.recovered_step.is_some())
        .count() as u64;
    let checks = [
        ("checkpoint", r.stats.checkpoints),
        ("rollback", r.stats.rollbacks),
        ("failure-detected", r.stats.total_retries()),
        ("recovery-completed", recovered_sites),
    ];
    for (kind, expected) in checks {
        let got = count(kind);
        if got != expected {
            return Err(CliError::new(format!(
                "trace inconsistency: {got} `{kind}` events but run stats say {expected}"
            )));
        }
    }
    Ok(())
}

/// Builds a named scheduler for `run`.
fn make_scheduler(name: &str, seed: u64) -> Result<Box<dyn Scheduler>, CliError> {
    Ok(match name {
        "random" | "seeded-random" => Box::new(SeededRandom::new(seed)),
        "round-robin" => Box::new(RoundRobin::new()),
        "pct" => Box::new(PctScheduler::new(seed, PctConfig::default())),
        other => {
            return Err(CliError::new(format!(
                "run: unknown scheduler `{other}` (expected random, round-robin or pct)"
            )))
        }
    })
}

/// Executes `run` on module text. Returns the report and the output files
/// to write as `(path, contents)` pairs (the `--trace` JSONL and/or the
/// `--record` decision trace). `replay_json` must carry the decision-trace
/// text when [`RunOptions::replay`] is set.
pub fn cmd_run(
    text: &str,
    opts: &RunOptions,
    replay_json: Option<&str>,
) -> Result<(String, Vec<(String, String)>), CliError> {
    let module = load(text)?;
    let entries = resolve_entries(&module, &opts.threads)?;
    let names: Vec<&str> = entries.iter().map(String::as_str).collect();
    let mut program = Program::from_entry_names(module, &names);
    let mut out = String::new();
    let mut files: Vec<(String, String)> = Vec::new();

    if opts.harden {
        let (hardened, spans) = pipeline(&opts.fix_markers, false, false).harden_timed(&program);
        let _ = writeln!(
            out,
            "hardened: {} recoverable sites, {} reexecution points",
            hardened.plan.stats.recoverable_sites, hardened.plan.stats.static_points
        );
        let _ = writeln!(out, "phases: {}", spans.render());
        program = hardened.program;
    }

    let config = MachineConfig {
        step_limit: opts.steps,
        trace_depth: opts.trace_depth,
        record_decisions: opts.record.is_some(),
        dense_oracle: opts.dense_oracle,
        ..MachineConfig::default()
    };

    if opts.replay.is_some() {
        if opts.trials > 1 {
            return Err(CliError::new(
                "run: --replay re-executes a single run; use --trials 1",
            ));
        }
        if opts.trace.is_some() {
            return Err(CliError::new("run: --replay cannot record a --trace"));
        }
        if opts.scheduler != "random" {
            return Err(CliError::new(
                "run: --replay follows the recorded trace; --scheduler does not apply",
            ));
        }
        let json = replay_json.expect("execute reads the --replay file");
        let trace = DecisionTrace::from_json(json)
            .map_err(|e| CliError::new(format!("run: bad replay trace: {e}")))?;
        let _ = writeln!(
            out,
            "replaying {} decisions recorded by {} (seed {}, points {}, hash {:#018x})",
            trace.len(),
            trace.scheduler,
            trace.seed,
            trace.point_mask().name(),
            trace.hash()
        );
        let (r, divergence) = run_replay(&program, &config, &trace);
        if let Some(d) = &divergence {
            let _ = writeln!(out, "WARNING: replay diverged: {d}");
        }
        render_outcome(&mut out, &program, &r, opts.steps);
        finish_recording(&mut out, &mut files, opts, r.decisions)?;
        return Ok((out, files));
    }

    if opts.trials > 1 {
        if opts.scheduler != "random" {
            return Err(CliError::new(
                "run: --trials aggregates seeded random runs; use --trials 1 with --scheduler",
            ));
        }
        if opts.record.is_some() {
            return Err(CliError::new(
                "run: --record captures a single run; use --trials 1",
            ));
        }
        if opts.trace.is_some() {
            return Err(CliError::new(
                "run: --trace records a single run; use --trials 1",
            ));
        }
        let s = run_trials_parallel(
            &program,
            &config,
            &ScheduleScript::none(),
            opts.seed,
            opts.trials,
            opts.jobs,
        );
        let _ = writeln!(
            out,
            "trials: {} (seeds {}..{}, {} jobs)",
            s.trials,
            opts.seed,
            opts.seed + opts.trials as u64,
            opts.jobs.max(1)
        );
        let _ = writeln!(
            out,
            "outcomes: {} completed, {} failed, {} hung, {} step-limited",
            s.completed, s.failed, s.hung, s.step_limited
        );
        let _ = writeln!(
            out,
            "mean insts/run: {:.1}, mean retries/run: {:.2}",
            s.mean_insts, s.mean_retries
        );
        if let Some(max) = s.max_recovery_steps {
            let _ = writeln!(out, "max recovery steps: {max}");
        }
        let _ = writeln!(out, "retries per run: {}", s.retries_hist.summary());
        let _ = writeln!(
            out,
            "recovery latency (steps): {}",
            s.recovery_hist.summary()
        );
        let _ = writeln!(out, "checkpoints per run: {}", s.checkpoints_hist.summary());
        let _ = writeln!(
            out,
            "undo depth per rollback (regs): {}",
            s.undo_depth_hist.summary()
        );
        return Ok((out, files));
    }

    let buffer = EventBuffer::new();
    let mut sched = make_scheduler(&opts.scheduler, opts.seed)?;
    let r = if opts.trace.is_some() {
        run_traced_with(&program, &config, sched.as_mut(), Box::new(buffer.clone()))
    } else {
        run_with(&program, &config, &ScheduleScript::none(), sched.as_mut())
    };

    render_outcome(&mut out, &program, &r, opts.steps);
    if r.stats.rollbacks > 0 {
        let _ = writeln!(
            out,
            "recovery: {} rollbacks, {} retries",
            r.stats.rollbacks,
            r.stats.total_retries()
        );
        let _ = writeln!(
            out,
            "recovery latency (steps): {}",
            r.metrics.rollback_latency.summary()
        );
    }
    if !r.metrics.lock_waits.is_empty() {
        let _ = writeln!(
            out,
            "lock waits (steps): {}",
            r.metrics.lock_waits.summary()
        );
    }

    if let Some(path) = &opts.trace {
        let events = buffer.take();
        verify_trace_consistency(&events, &r)?;
        let _ = writeln!(
            out,
            "trace: {} events (checkpoint/rollback/recovery counts match run stats)",
            events.len()
        );
        files.push((path.clone(), to_jsonl(&events)));
    }
    finish_recording(&mut out, &mut files, opts, r.decisions)?;
    Ok((out, files))
}

/// Runs once with an arbitrary scheduler *and* a trace sink (the harness
/// helpers fix one or the other).
fn run_traced_with(
    program: &Program,
    config: &MachineConfig,
    scheduler: &mut dyn Scheduler,
    sink: Box<dyn conair_runtime::TraceSink>,
) -> RunResult {
    conair_runtime::Machine::new(program, *config)
        .with_sink(sink)
        .run(scheduler)
}

/// Appends the outcome/output section of a run report.
fn render_outcome(out: &mut String, program: &Program, r: &RunResult, steps: u64) {
    match &r.outcome {
        RunOutcome::Completed => {
            let _ = writeln!(out, "completed in {} steps", r.stats.steps);
        }
        RunOutcome::Failed(f) => {
            let _ = writeln!(
                out,
                "FAILED ({}) in thread {} at step {}: {}",
                f.kind, f.thread, f.step, f.msg
            );
            for (step, loc) in &f.trace {
                let func = &program.module.func(loc.func).name;
                let _ = writeln!(out, "  step {step}: {func} @ {}:{}", loc.block, loc.inst);
            }
        }
        RunOutcome::Hang { blocked_on_locks } => {
            let _ = writeln!(out, "HANG: {blocked_on_locks} threads blocked on locks");
            if let Some(cycle) = conair_runtime::find_wait_cycle(&r.stats.wait_edges) {
                let _ = writeln!(out, "wait cycle: {cycle}");
            }
        }
        RunOutcome::StepLimit => {
            let _ = writeln!(out, "step limit ({steps}) reached");
        }
    }
    for o in &r.outputs {
        let _ = writeln!(out, "output [{}] {} = {}", o.thread, o.label, o.value);
    }
}

/// Writes the recorded decision trace to the `--record` path (stamping
/// the CLI seed into it) and reports it.
fn finish_recording(
    out: &mut String,
    files: &mut Vec<(String, String)>,
    opts: &RunOptions,
    decisions: Option<DecisionTrace>,
) -> Result<(), CliError> {
    let Some(path) = &opts.record else {
        return Ok(());
    };
    let mut trace = decisions.ok_or_else(|| {
        CliError::new("run: --record produced no decision trace (internal error)")
    })?;
    trace.seed = opts.seed;
    let _ = writeln!(
        out,
        "recorded {} decisions (hash {:#018x})",
        trace.len(),
        trace.hash()
    );
    files.push((path.clone(), trace.to_json()));
    Ok(())
}

/// A [`TraceSink`] rendering [`TraceEvent::ExploreProgress`] samples as a
/// live stderr ticker (`explore --progress`).
struct ProgressTicker;

impl TraceSink for ProgressTicker {
    fn record(&mut self, event: TraceEvent) {
        if let TraceEvent::ExploreProgress {
            step,
            schedules,
            budget,
            failures,
            frontier,
            snapshot_nodes,
            steps_saved,
            wave,
            ..
        } = event
        {
            eprintln!(
                "[explore {step:>6} ms] wave {wave}: {schedules}/{budget} schedules, \
                 {failures} failures, frontier {frontier}, {snapshot_nodes} snapshots, \
                 {steps_saved} steps saved"
            );
        }
    }
}

/// Fans one event stream out to several sinks.
struct Tee(Vec<Box<dyn TraceSink>>);

impl Tee {
    /// The cheapest sink equivalent to `sinks`: `None` for zero, the sink
    /// itself for one, a `Tee` otherwise.
    fn flatten(mut sinks: Vec<Box<dyn TraceSink>>) -> Option<Box<dyn TraceSink>> {
        match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => Some(Box::new(Tee(sinks))),
        }
    }
}

impl TraceSink for Tee {
    fn record(&mut self, event: TraceEvent) {
        for sink in &mut self.0 {
            sink.record(event.clone());
        }
    }
}

/// Executes `explore` on module text. Returns the report text and the
/// output files to write as `(path, contents)` pairs.
pub fn cmd_explore(
    text: &str,
    opts: &ExploreOptions,
) -> Result<(String, Vec<(String, String)>), CliError> {
    let module = load(text)?;
    let entries = resolve_entries(&module, &opts.threads)?;
    let names: Vec<&str> = entries.iter().map(String::as_str).collect();
    let mut program = Program::from_entry_names(module, &names);
    let mut out = String::new();
    let mut files: Vec<(String, String)> = Vec::new();

    if opts.harden {
        let hardened = pipeline(&opts.fix_markers, false, false).harden(&program);
        let _ = writeln!(
            out,
            "hardened: {} recoverable sites, {} reexecution points",
            hardened.plan.stats.recoverable_sites, hardened.plan.stats.static_points
        );
        program = hardened.program;
    }

    let strategy = match opts.scheduler.as_str() {
        "pct" => ExploreStrategy::Pct { depth: opts.depth },
        "bounded" => ExploreStrategy::Bounded {
            preemptions: opts.preemptions,
        },
        other => {
            return Err(CliError::new(format!(
                "explore: unknown scheduler `{other}` (expected pct or bounded)"
            )))
        }
    };
    let mask = PointMask::parse(&opts.points).ok_or_else(|| {
        CliError::new(format!(
            "explore: unknown --points `{}` (expected sync, shared or all)",
            opts.points
        ))
    })?;
    let config = MachineConfig {
        step_limit: opts.steps,
        dense_oracle: opts.dense_oracle,
        ..MachineConfig::default()
    };
    let mut ec = ExploreConfig::new(strategy);
    ec.mask = mask;
    ec.budget = opts.budget;
    ec.jobs = opts.jobs;
    ec.seed = opts.seed;
    ec.stop_at_first = !opts.keep_going;
    ec.snapshot_budget = opts.snapshot_budget;
    ec.wave = opts.wave;

    // The observatory: allocate a registry + observer only when asked, so
    // the plain path keeps the zero-cost discipline.
    let observing =
        opts.progress.is_some() || opts.progress_out.is_some() || opts.metrics_out.is_some();
    let buffer = EventBuffer::new();
    let mut observer = if observing {
        let mut obs = ExploreObserver::new(MetricsRegistry::new());
        if let Some(ms) = opts.progress {
            obs = obs.with_interval_ms(ms);
        }
        let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
        if opts.progress_out.is_some() {
            sinks.push(Box::new(buffer.clone()));
        }
        if opts.progress.is_some() {
            sinks.push(Box::new(ProgressTicker));
        }
        if let Some(sink) = Tee::flatten(sinks) {
            obs = obs.with_sink(sink);
        }
        Some(obs)
    } else {
        None
    };
    let mut report = explore_observed(&program, &config, &ec, observer.as_mut());
    let _ = writeln!(
        out,
        "explored {} schedules ({}, points {}, budget {}, {} jobs)",
        report.schedules,
        report.strategy,
        mask.name(),
        report.budget,
        opts.jobs
    );
    let _ = writeln!(
        out,
        "failures: {} ({:.1} per 1k schedules)",
        report.failures,
        report.failures_per_1k()
    );
    match &report.first_failure {
        Some(found) => {
            let _ = writeln!(
                out,
                "first failure: schedule #{}, {} decisions, outcome {}",
                found.index,
                found.trace.len(),
                found.outcome.label()
            );
            if let RunOutcome::Failed(f) = &found.outcome {
                let _ = writeln!(out, "  {} in thread {}: {}", f.kind, f.thread, f.msg);
            }
            let _ = writeln!(out, "trace hash: {:#018x}", found.trace.hash());
            let final_trace = if opts.minimize {
                let minimize_start = std::time::Instant::now();
                let min = minimize(&program, &config, &found.trace, opts.budget)
                    .map_err(|e| CliError::new(format!("explore: minimize failed: {e}")))?;
                let minimize_us = minimize_start.elapsed().as_micros() as u64;
                report.phases.minimize_us += minimize_us;
                if let Some(obs) = &observer {
                    obs.registry().phase_minimize_us.add(minimize_us);
                }
                let _ = writeln!(
                    out,
                    "minimized: {} -> {} decisions ({} candidate replays)",
                    min.original_len, min.minimized_len, min.candidates
                );
                min.trace
            } else {
                found.trace.clone()
            };
            if let Some(path) = &opts.out {
                files.push((path.clone(), final_trace.to_json()));
                let _ = writeln!(out, "replay with: run --replay {path}");
            }
        }
        None => {
            let _ = writeln!(out, "no failing schedule found within the budget");
            if matches!(strategy, ExploreStrategy::Bounded { .. }) && report.frontier == 0 {
                let _ = writeln!(
                    out,
                    "(search space exhausted: every schedule within {} preemptions ran)",
                    opts.preemptions
                );
            }
        }
    }
    if report.snapshots_taken > 0 || report.snapshot_hits > 0 {
        let _ = writeln!(
            out,
            "snapshot tree: {} taken, {} schedules resumed, {} steps saved",
            report.snapshots_taken, report.snapshot_hits, report.steps_saved
        );
    }
    if report.dedup_skips > 0 || report.independence_skips > 0 {
        let _ = writeln!(
            out,
            "pruned: {} duplicate traces, {} independent alternatives",
            report.dedup_skips, report.independence_skips
        );
    }
    if report.phases.total_us() > 0 {
        let p = &report.phases;
        let _ = writeln!(
            out,
            "phases (us): capture {}, restore {}, interpret {}, merge {}, minimize {}",
            p.capture_us, p.restore_us, p.interpret_us, p.merge_us, p.minimize_us
        );
    }
    let _ = writeln!(out, "wall time: {} ms", report.wall_ms);

    if let Some(path) = &opts.report_out {
        let json = serde_json::to_string_pretty(&report).expect("explore report serializes");
        files.push((path.clone(), json));
    }
    if let Some(path) = &opts.metrics_out {
        let obs = observer.as_ref().expect("--metrics-out builds an observer");
        files.push((path.clone(), obs.registry().render_prometheus()));
    }
    if let Some(path) = &opts.progress_out {
        files.push((path.clone(), to_jsonl(&buffer.take())));
    }
    Ok((out, files))
}

/// Renders an exploration report (`explore --report-out` JSON).
fn render_explore_report(report: &ExploreReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "exploration report:");
    let _ = writeln!(out, "  strategy: {}", report.strategy);
    let _ = writeln!(
        out,
        "  points: {}",
        PointMask::from_bits(report.mask).name()
    );
    let _ = writeln!(
        out,
        "  schedules: {} (budget {})",
        report.schedules, report.budget
    );
    let _ = writeln!(
        out,
        "  failures: {} ({:.1} per 1k schedules)",
        report.failures,
        report.failures_per_1k()
    );
    match (&report.first_failure, report.first_failure_depth()) {
        (Some(found), Some(depth)) => {
            let _ = writeln!(
                out,
                "  first failure: schedule #{}, depth {} decisions, outcome {}",
                found.index,
                depth,
                found.outcome.label()
            );
            let _ = writeln!(out, "  trace hash: {:#018x}", found.trace.hash());
        }
        _ => {
            let _ = writeln!(out, "  first failure: none");
        }
    }
    if report.frontier > 0 {
        let _ = writeln!(out, "  unexplored frontier: {} prefixes", report.frontier);
    }
    let _ = writeln!(out, "  probe decisions: {}", report.probe_decisions);
    if report.snapshots_taken > 0 || report.snapshot_hits > 0 {
        let _ = writeln!(
            out,
            "  snapshot tree: {} taken, {} hits, {} steps saved",
            report.snapshots_taken, report.snapshot_hits, report.steps_saved
        );
    }
    if report.dedup_skips > 0 || report.independence_skips > 0 {
        let _ = writeln!(
            out,
            "  pruned: {} duplicate traces, {} independent alternatives",
            report.dedup_skips, report.independence_skips
        );
    }
    if report.phases.total_us() > 0 {
        let p = &report.phases;
        let _ = writeln!(
            out,
            "  phases (us): capture {}, restore {}, interpret {}, merge {}, minimize {}",
            p.capture_us, p.restore_us, p.interpret_us, p.merge_us, p.minimize_us
        );
    }
    let _ = writeln!(out, "  wall time: {} ms", report.wall_ms);
    out
}

/// Renders a recorded decision trace (`run --record` / `explore -o` JSON).
fn render_decision_trace(trace: &DecisionTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "decision trace:");
    let _ = writeln!(
        out,
        "  scheduler: {} (seed {})",
        trace.scheduler, trace.seed
    );
    let _ = writeln!(out, "  points: {}", trace.point_mask().name());
    let _ = writeln!(out, "  decisions: {}", trace.len());
    let _ = writeln!(out, "  hash: {:#018x}", trace.hash());
    let mut by_thread: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for &d in &trace.decisions {
        *by_thread.entry(d).or_insert(0) += 1;
    }
    for (thread, picks) in by_thread {
        let _ = writeln!(out, "  thread {thread}: {picks} picks");
    }
    let _ = writeln!(out, "replay with: run --replay <this file>");
    out
}

/// One timeline line for an event.
fn render_event(e: &TraceEvent) -> String {
    use TraceEvent::*;
    let body = match e {
        ThreadStarted { thread, name, .. } => format!("{thread} started ({name})"),
        ThreadFinished { thread, .. } => format!("{thread} finished"),
        ContextSwitch {
            from: Some(f),
            to,
            eligible,
            ..
        } => format!("switch {f} -> {to} ({eligible} eligible)"),
        ContextSwitch { to, eligible, .. } => format!("schedule {to} ({eligible} eligible)"),
        LockWait {
            thread,
            lock,
            owner,
            ..
        } => match owner {
            Some(o) => format!("{thread} waits on {lock} (held by {o})"),
            None => format!("{thread} waits on {lock}"),
        },
        LockAcquired {
            thread,
            lock,
            timed,
            waited,
            ..
        } => {
            let kind = if *timed { "timed lock" } else { "lock" };
            if *waited > 0 {
                format!("{thread} acquired {lock} ({kind}, waited {waited} steps)")
            } else {
                format!("{thread} acquired {lock} ({kind})")
            }
        }
        LockReleased { thread, lock, .. } => format!("{thread} released {lock}"),
        LockTimeout {
            thread,
            lock,
            site,
            waited,
            ..
        } => format!("{thread} TIMED OUT on {lock} after {waited} steps ({site})"),
        CheckpointSaved {
            thread,
            epoch,
            reexecution,
            ..
        } => {
            if *reexecution {
                format!("{thread} checkpoint (epoch {epoch}, reexecution)")
            } else {
                format!("{thread} checkpoint (epoch {epoch})")
            }
        }
        FailureDetected {
            thread, site, kind, ..
        } => format!("{thread} FAILURE at {site}: {kind}"),
        CompensationFree { thread, base, .. } => {
            format!("{thread} compensation: free {base:#x}")
        }
        CompensationUnlock { thread, lock, .. } => {
            format!("{thread} compensation: unlock {lock}")
        }
        RolledBack {
            thread,
            site,
            retry,
            undo_restored,
            regs_undone,
            ..
        } => {
            if *undo_restored > 0 {
                format!(
                    "{thread} ROLLBACK for {site} (retry {retry}, {regs_undone} regs undone, \
                     {undo_restored} undo records)"
                )
            } else {
                format!("{thread} ROLLBACK for {site} (retry {retry}, {regs_undone} regs undone)")
            }
        }
        RecoveryExhausted {
            thread, site, kind, ..
        } => format!("{thread} recovery EXHAUSTED at {site}: {kind}"),
        BackoffSleep { thread, until, .. } => {
            format!("{thread} backoff until step {until}")
        }
        RecoveryCompleted {
            thread,
            site,
            retries,
            latency,
            ..
        } => format!("{thread} RECOVERED {site} after {retries} retries ({latency} steps)"),
        ScheduleInfo {
            scheduler,
            decisions,
            trace_hash,
            ..
        } => format!(
            "schedule recorded: {scheduler}, {decisions} decisions, hash {trace_hash:#018x}"
        ),
        RunEnded { outcome, .. } => format!("run ended: {outcome}"),
        // For explore events `step` is elapsed milliseconds, not a machine
        // step — the timeline prefix still orders them correctly.
        ExploreProgress {
            schedules,
            budget,
            failures,
            frontier,
            wave,
            ..
        } => format!(
            "explore progress: wave {wave}, {schedules}/{budget} schedules, \
             {failures} failures, frontier {frontier}"
        ),
        ExploreWave {
            wave,
            width,
            executed,
            wall_us,
            ..
        } => format!("explore wave {wave}: {executed}/{width} schedules in {wall_us} us"),
    };
    format!("  step {:>7}  {body}", e.step())
}

/// Executes `report` on JSONL trace text. Returns the rendered report and,
/// when `chrome` is requested, the Chrome trace-event JSON.
pub fn cmd_report(
    jsonl: &str,
    limit: usize,
    chrome: bool,
) -> Result<(String, Option<String>), CliError> {
    // A report input may be one of three formats: an exploration report
    // (`explore --report-out`), a recorded decision trace (`run --record`
    // / `explore -o`), or the default JSONL event stream (`run --trace`).
    // The JSON documents are whole-text objects that fail JSONL parsing,
    // so try them first.
    if let Ok(report) = serde_json::from_str::<ExploreReport>(jsonl) {
        if chrome {
            return Err(CliError::new(
                "report: --chrome needs a JSONL event trace, not an exploration report",
            ));
        }
        return Ok((render_explore_report(&report), None));
    }
    if let Ok(trace) = DecisionTrace::from_json(jsonl) {
        if chrome {
            return Err(CliError::new(
                "report: --chrome needs a JSONL event trace, not a decision trace",
            ));
        }
        return Ok((render_decision_trace(&trace), None));
    }
    let events = from_jsonl(jsonl).map_err(|e| CliError::new(format!("trace parse error: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "timeline ({} events):", events.len());
    let shown = if limit == 0 {
        events.len()
    } else {
        limit.min(events.len())
    };
    for e in &events[..shown] {
        let _ = writeln!(out, "{}", render_event(e));
    }
    if shown < events.len() {
        let _ = writeln!(
            out,
            "  ... {} more events (raise --limit, or --limit 0 for all)",
            events.len() - shown
        );
    }

    let m = summarize_events(&events);
    let _ = writeln!(out, "\nmetrics:");
    let _ = writeln!(
        out,
        "  checkpoints: {} ({} first-time, {} reexecutions)",
        m.checkpoint_executions,
        m.checkpoints_taken(),
        m.checkpoint_reexecutions
    );
    if m.per_site_retries.is_empty() {
        let _ = writeln!(out, "  retries: none");
    } else {
        let _ = writeln!(out, "  retries by site:");
        for (site, n) in &m.per_site_retries {
            let _ = writeln!(out, "    {site}: {n}");
        }
    }
    let _ = writeln!(
        out,
        "  recovery latency (steps): {}",
        m.rollback_latency.summary()
    );
    let _ = writeln!(
        out,
        "  undo depth per rollback (regs): {}",
        m.undo_depth.summary()
    );
    let _ = writeln!(out, "  lock waits (steps): {}", m.lock_waits.summary());
    let _ = writeln!(
        out,
        "  compensation: {} frees, {} unlocks",
        m.compensation_frees, m.compensation_unlocks
    );
    let _ = writeln!(out, "  context switches: {}", m.context_switches);
    if m.sched_decisions > 0 {
        let _ = writeln!(
            out,
            "  schedule: {} decisions, hash {:#018x}",
            m.sched_decisions, m.decision_trace_hash
        );
    }

    let chrome_json = if chrome {
        let value = to_chrome_trace(&events);
        Some(serde_json::to_string(&value).expect("chrome trace serializes"))
    } else {
        None
    };
    Ok((out, chrome_json))
}

/// Executes `stats` on a recorded exploration progress stream (`explore
/// --progress-out` JSONL), returning the summary text.
///
/// # Errors
///
/// Fails on unparseable input and on streams without exploration events
/// (e.g. a `run --trace` JSONL).
pub fn cmd_stats(jsonl: &str) -> Result<String, CliError> {
    let events = from_jsonl(jsonl).map_err(|e| CliError::new(format!("trace parse error: {e}")))?;
    let mut wave_count = 0u64;
    let mut progress_count = 0u64;
    let mut executed = 0u64;
    let mut widths: Vec<u64> = Vec::new();
    let mut elapsed_ms = 0u64;
    let (mut capture, mut restore, mut interpret, mut merge) = (0u64, 0u64, 0u64, 0u64);
    let mut last_progress: Option<&TraceEvent> = None;
    for e in &events {
        match e {
            TraceEvent::ExploreWave {
                step,
                width,
                executed: ex,
                capture_us,
                restore_us,
                interpret_us,
                merge_us,
                ..
            } => {
                wave_count += 1;
                executed += ex;
                widths.push(*width);
                elapsed_ms = elapsed_ms.max(*step);
                capture += capture_us;
                restore += restore_us;
                interpret += interpret_us;
                merge += merge_us;
            }
            TraceEvent::ExploreProgress { step, .. } => {
                progress_count += 1;
                elapsed_ms = elapsed_ms.max(*step);
                last_progress = Some(e);
            }
            _ => {}
        }
    }
    if wave_count == 0 && progress_count == 0 {
        return Err(CliError::new(
            "stats: no exploration events in input (record a stream with \
             `explore --progress-out p.jsonl`)",
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exploration stream: {wave_count} waves, {progress_count} progress samples, \
         {elapsed_ms} ms"
    );
    if let Some(TraceEvent::ExploreProgress {
        schedules,
        budget,
        failures,
        first_failure,
        frontier,
        snapshot_nodes,
        steps_saved,
        ..
    }) = last_progress
    {
        let _ = writeln!(out, "schedules: {schedules} of {budget} budget");
        if elapsed_ms > 0 {
            let _ = writeln!(
                out,
                "throughput: {:.1} schedules/s",
                *schedules as f64 * 1000.0 / elapsed_ms as f64
            );
        }
        match first_failure {
            Some(first) => {
                let _ = writeln!(out, "failures: {failures} (first at schedule #{first})");
            }
            None => {
                let _ = writeln!(out, "failures: {failures}");
            }
        }
        let _ = writeln!(
            out,
            "frontier: {frontier} prefixes, snapshot tree: {snapshot_nodes} nodes, \
             {steps_saved} steps saved"
        );
    }
    if wave_count > 0 {
        let _ = writeln!(
            out,
            "waves: {} executed over {} waves, width {}..{}",
            executed,
            wave_count,
            widths.iter().min().copied().unwrap_or(0),
            widths.iter().max().copied().unwrap_or(0)
        );
    }
    let attributed = capture + restore + interpret + merge;
    if attributed > 0 {
        let pct = |v: u64| 100.0 * v as f64 / attributed as f64;
        let _ = writeln!(out, "phase breakdown ({attributed} us attributed):");
        let _ = writeln!(out, "  capture:   {capture:>10} us ({:.1}%)", pct(capture));
        let _ = writeln!(out, "  restore:   {restore:>10} us ({:.1}%)", pct(restore));
        let _ = writeln!(
            out,
            "  interpret: {interpret:>10} us ({:.1}%)",
            pct(interpret)
        );
        let _ = writeln!(out, "  merge:     {merge:>10} us ({:.1}%)", pct(merge));
    }
    Ok(out)
}

/// Dispatches a parsed command, reading/writing files as needed.
///
/// # Errors
///
/// Propagates I/O, parse and execution errors.
pub fn execute(command: &Command) -> Result<String, CliError> {
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("cannot read `{path}`: {e}")))
    };
    let write = |path: &str, text: &str| {
        std::fs::write(path, text).map_err(|e| CliError::new(format!("cannot write `{path}`: {e}")))
    };
    match command {
        Command::Print { input } => cmd_print(&read(input)?),
        Command::Analyze {
            input,
            fix_markers,
            no_optimize,
            no_interproc,
        } => cmd_analyze(&read(input)?, fix_markers, *no_optimize, *no_interproc),
        Command::Harden {
            input,
            fix_markers,
            output,
        } => {
            let hardened = cmd_harden(&read(input)?, fix_markers)?;
            match output {
                Some(path) => {
                    write(path, &hardened)?;
                    Ok(format!("wrote hardened module to {path}\n"))
                }
                None => Ok(hardened),
            }
        }
        Command::Run { input, opts } => {
            let replay_json = match &opts.replay {
                Some(path) => Some(read(path)?),
                None => None,
            };
            let (mut report, files) = cmd_run(&read(input)?, opts, replay_json.as_deref())?;
            for (path, text) in &files {
                write(path, text)?;
                let _ = writeln!(report, "wrote {path}");
            }
            Ok(report)
        }
        Command::Explore { input, opts } => {
            let (mut report, files) = cmd_explore(&read(input)?, opts)?;
            for (path, text) in &files {
                write(path, text)?;
                let _ = writeln!(report, "wrote {path}");
            }
            Ok(report)
        }
        Command::Report {
            input,
            limit,
            chrome,
        } => {
            let (mut report, chrome_json) = cmd_report(&read(input)?, *limit, chrome.is_some())?;
            if let (Some(path), Some(json)) = (chrome, &chrome_json) {
                write(path, json)?;
                let _ = writeln!(report, "wrote Chrome trace to {path}");
            }
            Ok(report)
        }
        Command::Stats { input } => cmd_stats(&read(input)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "module demo {
global flag [1 x i64] = 0
fn reader(params=0, regs=2, locals=0) {
bb0:
    %r0 = ldg @g0
    %r1 = cmp.ne %r0, 0
    assert %r1, \"flag set\"
    output \"seen\", %r0
    ret
}
fn writer(params=0, regs=0, locals=0) {
bb0:
    stg @g0, 5
    ret
}
}";

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_commands() {
        assert_eq!(
            parse_args(&args(&["print", "a.cir"])).unwrap(),
            Command::Print {
                input: "a.cir".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["analyze", "a.cir", "--fix", "m", "--no-optimize"])).unwrap(),
            Command::Analyze {
                input: "a.cir".into(),
                fix_markers: vec!["m".into()],
                no_optimize: true,
                no_interproc: false,
            }
        );
        assert_eq!(
            parse_args(&args(&["harden", "a.cir", "-o", "b.cir"])).unwrap(),
            Command::Harden {
                input: "a.cir".into(),
                fix_markers: vec![],
                output: Some("b.cir".into()),
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.cir",
                "--threads",
                "x,y",
                "--seed",
                "7",
                "--steps",
                "100"
            ]))
            .unwrap(),
            Command::Run {
                input: "a.cir".into(),
                opts: RunOptions {
                    threads: vec!["x".into(), "y".into()],
                    seed: 7,
                    steps: 100,
                    ..RunOptions::default()
                },
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.cir",
                "--harden",
                "--trace",
                "t.jsonl",
                "--trace-depth",
                "4"
            ]))
            .unwrap(),
            Command::Run {
                input: "a.cir".into(),
                opts: RunOptions {
                    harden: true,
                    trace: Some("t.jsonl".into()),
                    trace_depth: 4,
                    ..RunOptions::default()
                },
            }
        );
        assert_eq!(
            parse_args(&args(&["run", "a.cir", "--trials", "8", "--jobs", "4"])).unwrap(),
            Command::Run {
                input: "a.cir".into(),
                opts: RunOptions {
                    trials: 8,
                    jobs: 4,
                    ..RunOptions::default()
                },
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "report", "t.jsonl", "--limit", "0", "--chrome", "c.json"
            ]))
            .unwrap(),
            Command::Report {
                input: "t.jsonl".into(),
                limit: 0,
                chrome: Some("c.json".into()),
            }
        );
    }

    #[test]
    fn parse_errors_are_usable() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["frobnicate", "a.cir"])).is_err());
        assert!(parse_args(&args(&["print"])).is_err());
        assert!(parse_args(&args(&["analyze", "a.cir", "--fix"])).is_err());
        assert!(parse_args(&args(&["run", "a", "b"])).is_err());
        assert!(parse_args(&args(&["run", "a.cir", "--bogus"])).is_err());
        assert!(parse_args(&args(&["run", "a.cir", "--trace"])).is_err());
        assert!(parse_args(&args(&["run", "a.cir", "--trials", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.cir", "--jobs", "x"])).is_err());
        assert!(parse_args(&args(&["report", "t.jsonl", "--limit", "x"])).is_err());
    }

    #[test]
    fn print_roundtrips_demo() {
        let out = cmd_print(DEMO).unwrap();
        assert!(out.contains("fn reader"));
        assert!(out.contains("2 functions"));
        assert!(cmd_print("not a module").is_err());
    }

    #[test]
    fn analyze_reports_sites_and_points() {
        let out = cmd_analyze(DEMO, &[], false, false).unwrap();
        assert!(out.contains("assertion-violation sites: 1"), "{out}");
        assert!(out.contains("wrong-output sites: 1"), "{out}");
        assert!(out.contains("reexecution points: "), "{out}");
        assert!(out.contains("mode: survival"));
    }

    #[test]
    fn harden_emits_parseable_hardened_module() {
        let out = cmd_harden(DEMO, &[]).unwrap();
        assert!(out.contains("checkpoint"), "{out}");
        assert!(out.contains("failguard.assert"), "{out}");
        // The hardened output is itself valid CLI input.
        let reprint = cmd_print(&out).unwrap();
        assert!(reprint.contains("checkpoint"));
    }

    #[test]
    fn run_executes_and_reports_recovery() {
        // The hardened demo recovers the order violation under some seeds;
        // the unhardened one may fail. Run the hardened text.
        let hardened = cmd_harden(DEMO, &[]).unwrap();
        let opts = RunOptions {
            threads: vec!["reader".into(), "writer".into()],
            seed: 3,
            steps: 100_000,
            ..RunOptions::default()
        };
        let (out, files) = cmd_run(&hardened, &opts, None).unwrap();
        assert!(out.contains("completed"), "{out}");
        assert!(out.contains("seen = 5"), "{out}");
        assert!(files.is_empty());
    }

    #[test]
    fn run_inline_harden_matches_pre_hardened_text() {
        let opts = RunOptions {
            harden: true,
            seed: 3,
            steps: 100_000,
            ..RunOptions::default()
        };
        let (out, _) = cmd_run(DEMO, &opts, None).unwrap();
        assert!(out.contains("hardened: "), "{out}");
        assert!(out.contains("phases: "), "{out}");
        assert!(out.contains("analyze"), "{out}");
        assert!(out.contains("transform"), "{out}");
        assert!(out.contains("completed"), "{out}");
    }

    #[test]
    fn run_defaults_threads_to_zero_param_functions() {
        // No --threads: reader and writer both have zero parameters.
        let opts = RunOptions {
            harden: true,
            seed: 3,
            steps: 100_000,
            ..RunOptions::default()
        };
        let (out, _) = cmd_run(DEMO, &opts, None).unwrap();
        assert!(out.contains("seen = 5"), "{out}");
    }

    #[test]
    fn run_trials_summary_is_identical_across_jobs() {
        let hardened = cmd_harden(DEMO, &[]).unwrap();
        let base = RunOptions {
            threads: vec!["reader".into(), "writer".into()],
            seed: 1,
            steps: 100_000,
            trials: 6,
            ..RunOptions::default()
        };
        let (seq, files) = cmd_run(&hardened, &base, None).unwrap();
        assert!(files.is_empty());
        assert!(seq.contains("trials: 6 (seeds 1..7, 1 jobs)"), "{seq}");
        assert!(seq.contains("outcomes: "), "{seq}");
        assert!(seq.contains("mean insts/run: "), "{seq}");

        let par = RunOptions { jobs: 4, ..base };
        let (out, _) = cmd_run(&hardened, &par, None).unwrap();
        // Seed-order merging makes the report identical apart from the
        // job count it echoes back.
        assert_eq!(
            seq.replace("1 jobs", ""),
            out.replace("4 jobs", ""),
            "summary must not depend on the job count"
        );
    }

    #[test]
    fn run_trials_rejects_trace() {
        let err = cmd_run(
            DEMO,
            &RunOptions {
                trials: 2,
                trace: Some("t.jsonl".into()),
                ..RunOptions::default()
            },
            None,
        )
        .unwrap_err();
        assert!(err.message.contains("--trials 1"), "{err}");
    }

    #[test]
    fn run_rejects_bad_threads() {
        assert!(cmd_run(
            DEMO,
            &RunOptions {
                threads: vec!["ghost".into()],
                ..RunOptions::default()
            },
            None,
        )
        .is_err());
    }

    #[test]
    fn traced_run_roundtrips_through_report() {
        let opts = RunOptions {
            harden: true,
            seed: 3,
            steps: 100_000,
            trace: Some("unused-by-cmd_run.jsonl".into()),
            ..RunOptions::default()
        };
        let (out, files) = cmd_run(DEMO, &opts, None).unwrap();
        assert!(
            out.contains("counts match run stats"),
            "consistency check must pass: {out}"
        );
        let jsonl = files
            .iter()
            .find(|(path, _)| path.ends_with(".jsonl"))
            .map(|(_, text)| text.clone())
            .expect("trace text produced");
        assert!(jsonl.lines().count() > 0);

        let (report, chrome) = cmd_report(&jsonl, 0, true).unwrap();
        assert!(report.contains("timeline ("), "{report}");
        assert!(report.contains("run ended: completed"), "{report}");
        assert!(report.contains("metrics:"), "{report}");
        assert!(report.contains("checkpoints: "), "{report}");
        let chrome = chrome.expect("chrome json produced");
        assert!(chrome.contains("traceEvents"), "{chrome}");
    }

    #[test]
    fn parse_explore_and_new_run_flags() {
        assert_eq!(
            parse_args(&args(&[
                "explore",
                "a.cir",
                "--scheduler",
                "bounded",
                "--preemptions",
                "1",
                "--budget",
                "100",
                "--points",
                "shared",
                "--jobs",
                "4",
                "--minimize",
                "--keep-going",
                "-o",
                "t.json",
                "--report-out",
                "r.json",
                "--snapshot-budget",
                "64",
                "--wave",
                "8",
            ]))
            .unwrap(),
            Command::Explore {
                input: "a.cir".into(),
                opts: ExploreOptions {
                    scheduler: "bounded".into(),
                    preemptions: 1,
                    budget: 100,
                    points: "shared".into(),
                    jobs: 4,
                    minimize: true,
                    keep_going: true,
                    out: Some("t.json".into()),
                    report_out: Some("r.json".into()),
                    snapshot_budget: 64,
                    wave: Some(8),
                    ..ExploreOptions::default()
                },
            }
        );
        assert!(parse_args(&args(&["explore", "a.cir", "--wave", "0"])).is_err());
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.cir",
                "--scheduler",
                "pct",
                "--record",
                "t.json"
            ]))
            .unwrap(),
            Command::Run {
                input: "a.cir".into(),
                opts: RunOptions {
                    scheduler: "pct".into(),
                    record: Some("t.json".into()),
                    ..RunOptions::default()
                },
            }
        );
        assert_eq!(
            parse_args(&args(&["run", "a.cir", "--replay", "t.json"])).unwrap(),
            Command::Run {
                input: "a.cir".into(),
                opts: RunOptions {
                    replay: Some("t.json".into()),
                    ..RunOptions::default()
                },
            }
        );
        assert!(parse_args(&args(&["explore", "a.cir", "--budget", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.cir", "--scheduler"])).is_err());
    }

    #[test]
    fn run_scheduler_selection() {
        for scheduler in ["random", "round-robin", "pct"] {
            let opts = RunOptions {
                threads: vec!["writer".into(), "reader".into()],
                scheduler: scheduler.into(),
                steps: 100_000,
                ..RunOptions::default()
            };
            // Any scheduler either completes or hits the assert, but must run.
            let (out, _) = cmd_run(DEMO, &opts, None).unwrap();
            assert!(
                out.contains("completed") || out.contains("FAILED"),
                "{scheduler}: {out}"
            );
        }
        let bad = RunOptions {
            scheduler: "lottery".into(),
            ..RunOptions::default()
        };
        assert!(cmd_run(DEMO, &bad, None).is_err());
    }

    #[test]
    fn record_then_replay_reproduces_bit_identically() {
        let record = RunOptions {
            threads: vec!["reader".into(), "writer".into()],
            seed: 5,
            steps: 100_000,
            record: Some("trace.json".into()),
            ..RunOptions::default()
        };
        let (out, files) = cmd_run(DEMO, &record, None).unwrap();
        assert!(out.contains("recorded "), "{out}");
        assert_eq!(files.len(), 1);
        let trace_json = files[0].1.clone();

        let replay = RunOptions {
            threads: vec!["reader".into(), "writer".into()],
            steps: 100_000,
            replay: Some("trace.json".into()),
            record: Some("re.json".into()),
            ..RunOptions::default()
        };
        let (out2, files2) = cmd_run(DEMO, &replay, Some(&trace_json)).unwrap();
        assert!(out2.contains("replaying "), "{out2}");
        assert!(!out2.contains("diverged"), "{out2}");
        // The re-recorded trace carries the same decisions (seed is
        // re-stamped by the replay options, so compare the hash, which
        // covers mask + decisions only).
        let original = DecisionTrace::from_json(&trace_json).unwrap();
        let rerecorded = DecisionTrace::from_json(&files2[0].1).unwrap();
        assert_eq!(original.hash(), rerecorded.hash());
    }

    #[test]
    fn replay_flag_interactions_are_rejected() {
        let trace = DecisionTrace::new("test", 0, PointMask::ALL).to_json();
        for opts in [
            RunOptions {
                replay: Some("t.json".into()),
                trials: 2,
                ..RunOptions::default()
            },
            RunOptions {
                replay: Some("t.json".into()),
                trace: Some("x.jsonl".into()),
                ..RunOptions::default()
            },
            RunOptions {
                replay: Some("t.json".into()),
                scheduler: "pct".into(),
                ..RunOptions::default()
            },
        ] {
            assert!(cmd_run(DEMO, &opts, Some(&trace)).is_err());
        }
        let trials_record = RunOptions {
            record: Some("t.json".into()),
            trials: 2,
            ..RunOptions::default()
        };
        assert!(cmd_run(DEMO, &trials_record, None).is_err());
    }

    #[test]
    fn explore_finds_demo_bug_and_minimizes() {
        let opts = ExploreOptions {
            threads: vec!["reader".into(), "writer".into()],
            scheduler: "pct".into(),
            points: "shared".into(),
            budget: 64,
            minimize: true,
            out: Some("bug.json".into()),
            report_out: Some("report.json".into()),
            ..ExploreOptions::default()
        };
        let (out, files) = cmd_explore(DEMO, &opts).unwrap();
        assert!(out.contains("first failure: "), "{out}");
        assert!(out.contains("minimized: "), "{out}");
        assert!(out.contains("trace hash: "), "{out}");
        assert_eq!(files.len(), 2);

        // The written trace replays to the same failure.
        let trace_json = &files.iter().find(|(p, _)| p == "bug.json").unwrap().1;
        let replay = RunOptions {
            threads: vec!["reader".into(), "writer".into()],
            replay: Some("bug.json".into()),
            ..RunOptions::default()
        };
        let (replayed, _) = cmd_run(DEMO, &replay, Some(trace_json)).unwrap();
        assert!(replayed.contains("FAILED"), "{replayed}");
        assert!(!replayed.contains("diverged"), "{replayed}");

        // The written report renders through `report`.
        let report_json = &files.iter().find(|(p, _)| p == "report.json").unwrap().1;
        let (rendered, chrome) = cmd_report(report_json, 0, false).unwrap();
        assert!(rendered.contains("exploration report:"), "{rendered}");
        assert!(rendered.contains("first failure: schedule #"), "{rendered}");
        assert!(chrome.is_none());

        // The written trace renders through `report` too.
        let (rendered, _) = cmd_report(trace_json, 0, false).unwrap();
        assert!(rendered.contains("decision trace:"), "{rendered}");
        assert!(rendered.contains("replay with: "), "{rendered}");
    }

    #[test]
    fn explore_bounded_renders_snapshot_tree_stats() {
        let opts = ExploreOptions {
            threads: vec!["reader".into(), "writer".into()],
            scheduler: "bounded".into(),
            points: "shared".into(),
            budget: 64,
            keep_going: true,
            report_out: Some("report.json".into()),
            ..ExploreOptions::default()
        };
        let (out, files) = cmd_explore(DEMO, &opts).unwrap();
        assert!(out.contains("snapshot tree: "), "{out}");
        let report_json = &files.iter().find(|(p, _)| p == "report.json").unwrap().1;
        let (rendered, _) = cmd_report(report_json, 0, false).unwrap();
        assert!(rendered.contains("snapshot tree: "), "{rendered}");

        // With the cache disabled the report is identical apart from the
        // wall clock and the snapshot counters.
        let off = ExploreOptions {
            snapshot_budget: 0,
            ..opts
        };
        let (off_out, off_files) = cmd_explore(DEMO, &off).unwrap();
        assert!(!off_out.contains("snapshot tree: "), "{off_out}");
        let off_json = &off_files
            .iter()
            .find(|(p, _)| p == "report.json")
            .unwrap()
            .1;
        let on: ExploreReport = serde_json::from_str(report_json).unwrap();
        let off: ExploreReport = serde_json::from_str(off_json).unwrap();
        assert_eq!(on.normalized(), off.normalized());
    }

    #[test]
    fn parse_observability_flags() {
        assert_eq!(
            parse_args(&args(&[
                "explore",
                "a.cir",
                "--progress",
                "--progress-out",
                "p.jsonl",
                "--metrics-out",
                "m.prom",
            ]))
            .unwrap(),
            Command::Explore {
                input: "a.cir".into(),
                opts: ExploreOptions {
                    progress: Some(DEFAULT_PROGRESS_INTERVAL_MS),
                    progress_out: Some("p.jsonl".into()),
                    metrics_out: Some("m.prom".into()),
                    ..ExploreOptions::default()
                },
            }
        );
        assert_eq!(
            parse_args(&args(&["explore", "a.cir", "--progress=250"])).unwrap(),
            Command::Explore {
                input: "a.cir".into(),
                opts: ExploreOptions {
                    progress: Some(250),
                    ..ExploreOptions::default()
                },
            }
        );
        assert!(parse_args(&args(&["explore", "a.cir", "--progress=fast"])).is_err());
        assert!(parse_args(&args(&["explore", "a.cir", "--metrics-out"])).is_err());
        assert_eq!(
            parse_args(&args(&["stats", "p.jsonl"])).unwrap(),
            Command::Stats {
                input: "p.jsonl".into()
            }
        );
    }

    #[test]
    fn explore_observability_leaves_report_identical() {
        let base = ExploreOptions {
            threads: vec!["reader".into(), "writer".into()],
            scheduler: "bounded".into(),
            points: "shared".into(),
            budget: 64,
            keep_going: true,
            report_out: Some("report.json".into()),
            ..ExploreOptions::default()
        };
        let observed = ExploreOptions {
            progress_out: Some("p.jsonl".into()),
            metrics_out: Some("m.prom".into()),
            jobs: 4,
            ..base.clone()
        };
        let (out, files) = cmd_explore(DEMO, &observed).unwrap();
        assert!(out.contains("phases (us): "), "{out}");
        let file = |name: &str, files: &[(String, String)]| {
            files
                .iter()
                .find(|(p, _)| p == name)
                .map(|(_, t)| t.clone())
                .unwrap_or_else(|| panic!("missing output file {name}"))
        };

        // The Prometheus dump carries search totals, phase timers and the
        // snapshot-tree gauges.
        let prom = file("m.prom", &files);
        assert!(
            prom.contains("# TYPE conair_explore_schedules_total counter"),
            "{prom}"
        );
        assert!(
            prom.contains("conair_explore_phase_seconds_total{phase=\"interpret\"}"),
            "{prom}"
        );
        assert!(prom.contains("conair_explore_snapshot_nodes"), "{prom}");

        // The recorded stream parses and feeds both `stats` and `report`.
        let stream = file("p.jsonl", &files);
        let events = from_jsonl(&stream).unwrap();
        assert!(events.iter().any(|e| e.kind_name() == "explore-wave"));
        assert!(events.iter().any(|e| e.kind_name() == "explore-progress"));
        let stats = cmd_stats(&stream).unwrap();
        assert!(stats.contains("schedules: "), "{stats}");
        assert!(stats.contains("phase breakdown"), "{stats}");
        let (timeline, _) = cmd_report(&stream, 0, false).unwrap();
        assert!(timeline.contains("explore wave"), "{timeline}");

        // Observability must not change the search: the report is
        // identical (modulo wall-clock fields) to a run with every flag
        // off at a different job count.
        let (plain_out, plain_files) = cmd_explore(DEMO, &base).unwrap();
        assert!(!plain_out.is_empty());
        let on: ExploreReport = serde_json::from_str(&file("report.json", &files)).unwrap();
        let off: ExploreReport = serde_json::from_str(&file("report.json", &plain_files)).unwrap();
        assert_eq!(on.normalized(), off.normalized());
    }

    #[test]
    fn stats_rejects_streams_without_explore_events() {
        let opts = RunOptions {
            harden: true,
            seed: 3,
            steps: 100_000,
            trace: Some("t.jsonl".into()),
            ..RunOptions::default()
        };
        let (_, files) = cmd_run(DEMO, &opts, None).unwrap();
        let err = cmd_stats(&files[0].1).unwrap_err();
        assert!(err.message.contains("no exploration events"), "{err}");
        assert!(cmd_stats("not json").is_err());
    }

    #[test]
    fn explore_bounded_exhausts_benign_program() {
        const BENIGN: &str = "module ok {
fn solo(params=0, regs=1, locals=0) {
bb0:
    %r0 = add 1, 2
    output \"v\", %r0
    ret
}
}";
        let opts = ExploreOptions {
            scheduler: "bounded".into(),
            budget: 50,
            ..ExploreOptions::default()
        };
        let (out, files) = cmd_explore(BENIGN, &opts).unwrap();
        assert!(out.contains("no failing schedule found"), "{out}");
        assert!(out.contains("search space exhausted"), "{out}");
        assert!(files.is_empty());
        // A single-threaded program has exactly one schedule.
        assert!(out.contains("explored 1 schedules"), "{out}");
    }

    #[test]
    fn explore_rejects_bad_options() {
        let bad_sched = ExploreOptions {
            scheduler: "chess".into(),
            ..ExploreOptions::default()
        };
        assert!(cmd_explore(DEMO, &bad_sched).is_err());
        let bad_points = ExploreOptions {
            points: "everything".into(),
            ..ExploreOptions::default()
        };
        assert!(cmd_explore(DEMO, &bad_points).is_err());
    }

    #[test]
    fn report_limit_elides_tail() {
        let opts = RunOptions {
            harden: true,
            seed: 3,
            steps: 100_000,
            trace: Some("x.jsonl".into()),
            ..RunOptions::default()
        };
        let (_, files) = cmd_run(DEMO, &opts, None).unwrap();
        let jsonl = files[0].1.clone();
        let total = jsonl.lines().count();
        assert!(total > 2);
        let (report, _) = cmd_report(&jsonl, 2, false).unwrap();
        assert!(report.contains("more events"), "{report}");
        assert!(
            report.contains(&format!("{} more events", total - 2)),
            "{report}"
        );
    }
}
