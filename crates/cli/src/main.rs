//! The `conair-cli` binary: thin wrapper over the library commands.

use conair_cli::{execute, parse_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|cmd| execute(&cmd)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("conair-cli: {e}");
            std::process::exit(e.code);
        }
    }
}
