//! File-level CLI tests over the shipped `.cir` assets.

use conair_cli::{execute, Command, RunOptions};

fn asset(name: &str) -> String {
    format!("{}/../../assets/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn print_and_analyze_assets() {
    for file in ["order_violation.cir", "deadlock.cir"] {
        let out = execute(&Command::Print { input: asset(file) }).unwrap();
        assert!(out.contains("fn "), "{file}: {out}");
    }
    let out = execute(&Command::Analyze {
        input: asset("order_violation.cir"),
        fix_markers: vec![],
        no_optimize: false,
        no_interproc: false,
    })
    .unwrap();
    assert!(out.contains("assertion-violation sites: 1"), "{out}");
}

#[test]
fn harden_to_file_then_run() {
    let out_path = std::env::temp_dir().join("conair_cli_hardened.cir");
    let out = execute(&Command::Harden {
        input: asset("order_violation.cir"),
        fix_markers: vec![],
        output: Some(out_path.to_string_lossy().into_owned()),
    })
    .unwrap();
    assert!(out.contains("wrote hardened module"));
    let run = execute(&Command::Run {
        input: out_path.to_string_lossy().into_owned(),
        opts: RunOptions {
            threads: vec!["reader".into(), "writer".into()],
            seed: 3,
            steps: 1_000_000,
            ..RunOptions::default()
        },
    })
    .unwrap();
    assert!(run.contains("completed"), "{run}");
    assert!(run.contains("consumed = 42"), "{run}");
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn deadlock_asset_hangs_with_diagnosis_under_adverse_seed() {
    // Some seed interleaves the two lock acquisitions adversely; scan a few.
    let mut saw_hang = false;
    for seed in 0..60 {
        let run = execute(&Command::Run {
            input: asset("deadlock.cir"),
            opts: RunOptions {
                threads: vec!["t1".into(), "t2".into()],
                seed,
                steps: 200_000,
                ..RunOptions::default()
            },
        })
        .unwrap();
        if run.contains("HANG") {
            assert!(run.contains("wait cycle:"), "{run}");
            saw_hang = true;
            break;
        }
    }
    assert!(saw_hang, "no seed produced the deadlock");
}

#[test]
fn hardened_traced_deadlock_run_then_report() {
    // The acceptance path: harden inline, trace to JSONL, then report.
    // --threads is omitted on purpose: t1 and t2 are the zero-parameter
    // functions of the module and become the default entries.
    let trace_path = std::env::temp_dir().join("conair_cli_deadlock_trace.jsonl");
    let chrome_path = std::env::temp_dir().join("conair_cli_deadlock_trace.chrome.json");
    let run = execute(&Command::Run {
        input: asset("deadlock.cir"),
        opts: RunOptions {
            harden: true,
            seed: 11,
            steps: 1_000_000,
            trace: Some(trace_path.to_string_lossy().into_owned()),
            ..RunOptions::default()
        },
    })
    .unwrap();
    assert!(run.contains("hardened: "), "{run}");
    assert!(run.contains("counts match run stats"), "{run}");
    assert!(run.contains("wrote "), "{run}");

    let report = execute(&Command::Report {
        input: trace_path.to_string_lossy().into_owned(),
        limit: 0,
        chrome: Some(chrome_path.to_string_lossy().into_owned()),
    })
    .unwrap();
    assert!(report.contains("timeline ("), "{report}");
    assert!(report.contains("metrics:"), "{report}");
    assert!(report.contains("wrote Chrome trace to "), "{report}");
    let chrome = std::fs::read_to_string(&chrome_path).unwrap();
    assert!(chrome.contains("traceEvents"), "{chrome}");
    let _ = std::fs::remove_file(trace_path);
    let _ = std::fs::remove_file(chrome_path);
}

#[test]
fn missing_file_reports_cleanly() {
    let err = execute(&Command::Print {
        input: "/no/such/file.cir".into(),
    })
    .unwrap_err();
    assert!(err.message.contains("cannot read"));
}
