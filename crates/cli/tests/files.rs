//! File-level CLI tests over the shipped `.cir` assets.

use conair_cli::{execute, Command};

fn asset(name: &str) -> String {
    format!("{}/../../assets/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn print_and_analyze_assets() {
    for file in ["order_violation.cir", "deadlock.cir"] {
        let out = execute(&Command::Print { input: asset(file) }).unwrap();
        assert!(out.contains("fn "), "{file}: {out}");
    }
    let out = execute(&Command::Analyze {
        input: asset("order_violation.cir"),
        fix_markers: vec![],
        no_optimize: false,
        no_interproc: false,
    })
    .unwrap();
    assert!(out.contains("assertion-violation sites: 1"), "{out}");
}

#[test]
fn harden_to_file_then_run() {
    let out_path = std::env::temp_dir().join("conair_cli_hardened.cir");
    let out = execute(&Command::Harden {
        input: asset("order_violation.cir"),
        fix_markers: vec![],
        output: Some(out_path.to_string_lossy().into_owned()),
    })
    .unwrap();
    assert!(out.contains("wrote hardened module"));
    let run = execute(&Command::Run {
        input: out_path.to_string_lossy().into_owned(),
        threads: vec!["reader".into(), "writer".into()],
        seed: 3,
        steps: 1_000_000,
    })
    .unwrap();
    assert!(run.contains("completed"), "{run}");
    assert!(run.contains("consumed = 42"), "{run}");
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn deadlock_asset_hangs_with_diagnosis_under_adverse_seed() {
    // Some seed interleaves the two lock acquisitions adversely; scan a few.
    let mut saw_hang = false;
    for seed in 0..60 {
        let run = execute(&Command::Run {
            input: asset("deadlock.cir"),
            threads: vec!["t1".into(), "t2".into()],
            seed,
            steps: 200_000,
        })
        .unwrap();
        if run.contains("HANG") {
            assert!(run.contains("wait cycle:"), "{run}");
            saw_hang = true;
            break;
        }
    }
    assert!(saw_hang, "no seed produced the deadlock");
}

#[test]
fn missing_file_reports_cleanly() {
    let err = execute(&Command::Print {
        input: "/no/such/file.cir".into(),
    })
    .unwrap_err();
    assert!(err.message.contains("cannot read"));
}
